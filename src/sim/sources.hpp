#pragma once
// Input voltage sources for the generalized-input-signal experiments of
// Section IV.  Each source is a monotone 0 -> 1V transition and reports the
// analytic statistics of its *derivative* (the quantities Corollaries 2-3
// reason about): mean, central moments mu2/mu3, and the 50% crossing time.
//
// A step has an impulse derivative (mu2 = mu3 = 0); a saturated ramp has a
// symmetric box derivative (mu3 = 0, mu2 = tr^2/12); the raised-cosine ramp
// is a smooth symmetric transition; the exponential source has a positively
// skewed derivative; PWL covers arbitrary piecewise-linear transitions.

#include <memory>
#include <string>
#include <vector>

namespace rct::sim {

/// Statistics of the source derivative, viewed as a density (paper Sec. IV).
struct DerivativeStats {
  double mean;  ///< first moment of v'(t)
  double mu2;   ///< second central moment
  double mu3;   ///< third central moment
};

/// A monotone 0->1 input transition.
class Source {
 public:
  virtual ~Source() = default;

  /// Source voltage at time t (0 for t < 0; approaches 1 as t -> inf).
  [[nodiscard]] virtual double value(double t) const = 0;

  /// Pointwise derivative v'(t).  For the ideal step (impulse derivative)
  /// this returns 0 and callers must special-case is_step().
  [[nodiscard]] virtual double derivative(double t) const = 0;

  /// True for the ideal step (whose derivative is an impulse).
  [[nodiscard]] virtual bool is_step() const { return false; }

  /// Time at which the source crosses `level` in (0, 1).
  [[nodiscard]] virtual double crossing_time(double level) const = 0;

  /// Analytic statistics of v'(t).
  [[nodiscard]] virtual DerivativeStats derivative_stats() const = 0;

  /// True when v'(t) is unimodal (hypothesis of Corollary 2).
  [[nodiscard]] virtual bool derivative_unimodal() const = 0;

  /// Earliest time after which the source has (numerically) settled to 1.
  [[nodiscard]] virtual double settle_time() const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Ideal unit step at t = 0.
class StepSource final : public Source {
 public:
  [[nodiscard]] double value(double t) const override { return t >= 0.0 ? 1.0 : 0.0; }
  [[nodiscard]] double derivative(double) const override { return 0.0; }
  [[nodiscard]] bool is_step() const override { return true; }
  [[nodiscard]] double crossing_time(double) const override { return 0.0; }
  [[nodiscard]] DerivativeStats derivative_stats() const override { return {0.0, 0.0, 0.0}; }
  [[nodiscard]] bool derivative_unimodal() const override { return true; }
  [[nodiscard]] double settle_time() const override { return 0.0; }
  [[nodiscard]] std::string describe() const override { return "step"; }
};

/// Saturated ramp: linear 0->1 over [0, rise_time].
class SaturatedRampSource final : public Source {
 public:
  explicit SaturatedRampSource(double rise_time);
  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double derivative(double t) const override;
  [[nodiscard]] double crossing_time(double level) const override { return level * tr_; }
  [[nodiscard]] DerivativeStats derivative_stats() const override;
  [[nodiscard]] bool derivative_unimodal() const override { return true; }
  [[nodiscard]] double settle_time() const override { return tr_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double rise_time() const { return tr_; }

 private:
  double tr_;
};

/// Raised-cosine ramp: v(t) = (1 - cos(pi t / rise_time)) / 2 on [0, tr].
/// Smooth, with a symmetric unimodal derivative.
class RaisedCosineSource final : public Source {
 public:
  explicit RaisedCosineSource(double rise_time);
  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double derivative(double t) const override;
  [[nodiscard]] double crossing_time(double level) const override;
  [[nodiscard]] DerivativeStats derivative_stats() const override;
  [[nodiscard]] bool derivative_unimodal() const override { return true; }
  [[nodiscard]] double settle_time() const override { return tr_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double tr_;
};

/// Exponential source: v(t) = 1 - exp(-t/tau).  Positively skewed,
/// monotone-decreasing (hence unimodal) derivative.
class ExponentialSource final : public Source {
 public:
  explicit ExponentialSource(double tau);
  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double derivative(double t) const override;
  [[nodiscard]] double crossing_time(double level) const override;
  [[nodiscard]] DerivativeStats derivative_stats() const override;
  [[nodiscard]] bool derivative_unimodal() const override { return true; }
  [[nodiscard]] double settle_time() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double tau_;
};

/// Piecewise-linear monotone source.  Points must start at (t0, 0), end at
/// (tn, 1), with non-decreasing times and values.  The derivative is
/// piecewise constant; its moments are computed in closed form.
class PwlSource final : public Source {
 public:
  struct Point {
    double t;
    double v;
  };
  explicit PwlSource(std::vector<Point> points);
  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double derivative(double t) const override;
  [[nodiscard]] double crossing_time(double level) const override;
  [[nodiscard]] DerivativeStats derivative_stats() const override;
  [[nodiscard]] bool derivative_unimodal() const override;
  [[nodiscard]] double settle_time() const override { return pts_.back().t; }
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<Point> pts_;
};

}  // namespace rct::sim
