#include "sim/waveform_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rct::sim {
namespace {

std::vector<std::string> split_commas(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.emplace_back(line.substr(start));
      return out;
    }
    out.emplace_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("waveform csv line " + std::to_string(line_no) + ": " + msg);
}

}  // namespace

std::string write_csv(const WaveformBundle& bundle) {
  if (bundle.waveforms.empty() || bundle.names.size() != bundle.waveforms.size())
    throw std::invalid_argument("write_csv: names/waveforms mismatch or empty");
  const auto& t = bundle.waveforms.front().times();
  for (const Waveform& w : bundle.waveforms)
    if (w.times() != t) throw std::invalid_argument("write_csv: time bases differ");

  std::ostringstream os;
  os << "time";
  for (const std::string& n : bundle.names) os << ',' << n;
  os << '\n';
  char buf[64];
  for (std::size_t k = 0; k < t.size(); ++k) {
    std::snprintf(buf, sizeof(buf), "%.12e", t[k]);
    os << buf;
    for (const Waveform& w : bundle.waveforms) {
      std::snprintf(buf, sizeof(buf), ",%.12e", w.value(k));
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

WaveformBundle read_csv(std::string_view text) {
  WaveformBundle out;
  std::vector<double> times;
  std::vector<std::vector<double>> cols;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_commas(line);
    if (line_no == 1) {
      if (cells.size() < 2 || cells[0] != "time") fail(line_no, "expected 'time,<name>...'");
      out.names.assign(cells.begin() + 1, cells.end());
      cols.resize(out.names.size());
      continue;
    }
    if (cells.size() != out.names.size() + 1) fail(line_no, "wrong column count");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      char* end = nullptr;
      const double v = std::strtod(cells[c].c_str(), &end);
      if (end == cells[c].c_str() || *end != '\0') fail(line_no, "bad number '" + cells[c] + "'");
      if (c == 0)
        times.push_back(v);
      else
        cols[c - 1].push_back(v);
    }
  }
  if (times.size() < 2) throw std::invalid_argument("waveform csv: need >= 2 samples");
  for (auto& col : cols) out.waveforms.emplace_back(times, std::move(col));
  return out;
}

void save_csv(const WaveformBundle& bundle, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_csv: cannot open '" + path + "'");
  f << write_csv(bundle);
  if (!f) throw std::runtime_error("save_csv: write failed for '" + path + "'");
}

WaveformBundle load_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_csv: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return read_csv(ss.str());
}

}  // namespace rct::sim
