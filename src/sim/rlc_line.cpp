#include "sim/rlc_line.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/dense_matrix.hpp"

namespace rct::sim {

RlcLine::RlcLine(std::size_t segments, double r_driver, double r_seg, double l_seg,
                 double c_seg)
    : n_(segments), rd_(r_driver), r_(r_seg), l_(l_seg), c_(c_seg) {
  if (segments < 1 || r_driver < 0.0 || r_seg < 0.0 || !(l_seg > 0.0) || !(c_seg > 0.0))
    throw std::invalid_argument("RlcLine: bad parameters");
}

double RlcLine::elmore_delay() const {
  // RC-ladder Elmore at the far node: each node k holds c_ and sees the
  // shared-path resistance Rd + k*R, so T_D = C * sum_k (Rd + kR).
  double td = 0.0;
  for (std::size_t k = 1; k <= n_; ++k) td += (rd_ + static_cast<double>(k) * r_) * c_;
  return td;
}

double RlcLine::settle_horizon() const {
  const double rc = (rd_ + r_ * static_cast<double>(n_)) * c_ * static_cast<double>(n_);
  const double lc = std::sqrt(l_ * c_) * static_cast<double>(n_);
  // Ringing decays like 2L/R per segment; cover all three scales.
  const double decay = (r_ + rd_ > 0.0) ? 2.0 * l_ * static_cast<double>(n_) / (r_ + rd_) : 0.0;
  return 30.0 * std::max({rc, lc, decay});
}

Waveform RlcLine::step_response(double t_end, std::size_t steps) const {
  if (!(t_end > 0.0) || steps < 2) throw std::invalid_argument("RlcLine: bad time grid");
  const std::size_t dim = 2 * n_;  // [i_1..i_n, v_1..v_n]
  // x' = A x + B u.
  linalg::Matrix a(dim, dim);
  std::vector<double> bvec(dim, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t ik = k;
    const std::size_t vk = n_ + k;
    // L i_k' = v_{k-1} - v_k - R_eff i_k; the driver resistance folds into
    // the first inductor branch.
    const double r_eff = r_ + (k == 0 ? rd_ : 0.0);
    if (k == 0) {
      bvec[ik] = 1.0 / l_;
    } else {
      a(ik, n_ + k - 1) += 1.0 / l_;
    }
    a(ik, vk) -= 1.0 / l_;
    a(ik, ik) -= r_eff / l_;
    // C v_k' = i_k - i_{k+1}.
    a(vk, ik) += 1.0 / c_;
    if (k + 1 < n_) a(vk, ik + 1) -= 1.0 / c_;
  }

  // Trapezoidal: (I - h/2 A) x1 = (I + h/2 A) x0 + h/2 B (u0 + u1), u = 1.
  const double h = t_end / static_cast<double>(steps);
  linalg::Matrix lhs(dim, dim);
  linalg::Matrix rhs_m(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      lhs(i, j) = (i == j ? 1.0 : 0.0) - 0.5 * h * a(i, j);
      rhs_m(i, j) = (i == j ? 1.0 : 0.0) + 0.5 * h * a(i, j);
    }
  }
  const linalg::LuFactor lu(lhs);

  std::vector<double> x(dim, 0.0);
  std::vector<double> t_grid(steps + 1);
  std::vector<double> v_far(steps + 1, 0.0);
  for (std::size_t s = 1; s <= steps; ++s) {
    std::vector<double> rhs = rhs_m.multiply(x);
    for (std::size_t i = 0; i < dim; ++i) rhs[i] += h * bvec[i];  // u0 = u1 = 1
    lu.solve_in_place(rhs);
    x.swap(rhs);
    t_grid[s] = h * static_cast<double>(s);
    v_far[s] = x[2 * n_ - 1];
  }
  return {std::move(t_grid), std::move(v_far)};
}

double RlcLine::step_delay(double fraction) const {
  const Waveform w = step_response(settle_horizon(), 20000);
  const auto c = w.first_rise_crossing(fraction);
  if (!c) throw std::runtime_error("RlcLine: response never crosses the threshold");
  return *c;
}

double RlcLine::overshoot() const {
  const Waveform w = step_response(settle_horizon(), 20000);
  double peak = 0.0;
  for (double v : w.values()) peak = std::max(peak, v);
  return peak;
}

}  // namespace rct::sim
