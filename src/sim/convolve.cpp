#include "sim/convolve.hpp"

#include <cmath>
#include <stdexcept>

namespace rct::sim {
namespace {

double grid_step(const Waveform& w, const char* who) {
  if (w.size() < 2) throw std::invalid_argument(std::string(who) + ": need >= 2 samples");
  const double dt = w.time(1) - w.time(0);
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double d = w.time(i) - w.time(i - 1);
    if (std::abs(d - dt) > 1e-9 * dt)
      throw std::invalid_argument(std::string(who) + ": grid must be uniform");
  }
  if (std::abs(w.time(0)) > 1e-12 * dt)
    throw std::invalid_argument(std::string(who) + ": grid must start at 0");
  return dt;
}

}  // namespace

Waveform convolve_response(const Waveform& impulse, const Source& input) {
  const double dt = grid_step(impulse, "convolve_response");
  const std::size_t n = impulse.size();
  std::vector<double> y(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = impulse.time(k);
    double acc = 0.0;
    for (std::size_t j = 0; j <= k; ++j) {
      const double w = (j == 0 || j == k) ? 0.5 : 1.0;  // trapezoid weights
      acc += w * impulse.value(j) * input.value(t - impulse.time(j));
    }
    y[k] = acc * dt;
  }
  return {impulse.times(), std::move(y)};
}

Waveform convolve_densities(const Waveform& f, const Waveform& g) {
  const double dtf = grid_step(f, "convolve_densities(f)");
  const double dtg = grid_step(g, "convolve_densities(g)");
  if (std::abs(dtf - dtg) > 1e-9 * dtf)
    throw std::invalid_argument("convolve_densities: grids must share the step");
  const std::size_t n = f.size();
  const std::size_t m = g.size();
  std::vector<double> t(n + m - 1);
  std::vector<double> y(n + m - 1, 0.0);
  for (std::size_t k = 0; k < t.size(); ++k) t[k] = dtf * static_cast<double>(k);
  // Trapezoid-consistent discrete convolution: halve endpoint samples so
  // the result's mass equals the product of the trapezoid masses.
  auto wf = [n](std::size_t i) { return (i == 0 || i + 1 == n) ? 0.5 : 1.0; };
  auto wg = [m](std::size_t j) { return (j == 0 || j + 1 == m) ? 0.5 : 1.0; };
  for (std::size_t i = 0; i < n; ++i) {
    const double fi = wf(i) * f.value(i);
    if (fi == 0.0) continue;
    for (std::size_t j = 0; j < m; ++j) y[i + j] += fi * wg(j) * g.value(j) * dtf;
  }
  return {std::move(t), std::move(y)};
}

}  // namespace rct::sim
