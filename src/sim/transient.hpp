#pragma once
// Time-domain transient simulation of RC trees with arbitrary input
// sources, using the O(N) tree solver per step.
//
// Backward Euler (L-stable, 1st order) and trapezoidal (A-stable, 2nd
// order) companion models are provided.  This is the scalable counterpart
// of ExactAnalysis: O(N) per step instead of O(N^3) setup, used for the
// perf benches and as an independent cross-check of the closed forms.

#include <vector>

#include "rctree/rctree.hpp"
#include "sim/sources.hpp"
#include "sim/waveform.hpp"

namespace rct::sim {

/// Integration method for transient analysis.
enum class Method {
  kBackwardEuler,
  kTrapezoidal,
};

/// Transient run configuration.
struct TransientOptions {
  double t_end = 0.0;      ///< required: simulation end time (> 0)
  std::size_t steps = 2000;  ///< uniform step count
  Method method = Method::kTrapezoidal;
};

/// Result: one waveform per probed node (in probe order).
struct TransientResult {
  std::vector<double> time;                 ///< shared time base (steps+1 points)
  std::vector<std::vector<double>> values;  ///< values[p][k] = probe p at time[k]
  [[nodiscard]] Waveform waveform(std::size_t probe) const { return {time, values[probe]}; }
};

/// Simulates the tree driven by `input`, recording the given probes.
/// Throws std::invalid_argument for bad options or probe ids.
[[nodiscard]] TransientResult simulate(const RCTree& tree, const Source& input,
                                       const std::vector<NodeId>& probes,
                                       const TransientOptions& options);

}  // namespace rct::sim
