#include "server/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rct::server {
namespace {

/// Minimal recursive-descent scanner over one flat JSON object.  Supports
/// exactly what the protocol needs — string, number, true/false/null
/// values, no nesting — and reports the first problem it sees instead of
/// throwing.  Nested containers are skipped structurally so future
/// protocol revisions can add them without breaking old servers.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(std::string_view text) : text_(text) {}

  [[nodiscard]] bool fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }
  [[nodiscard]] const std::string& error() const { return error_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Parses a JSON string literal (opening quote already *not* consumed).
  [[nodiscard]] bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Decode \uXXXX; the protocol only ever emits ASCII control
          // escapes, so non-ASCII code points are folded to '?' rather
          // than carrying a full UTF-8 encoder.
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9')
              value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          out.push_back(value < 0x80 ? static_cast<char>(value) : '?');
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  /// Parses one scalar value as raw text; `kind` tells the caller how to
  /// interpret it ('s' string, 'n' number, 'b' bool, '0' null).
  [[nodiscard]] bool parse_value(std::string& raw, char& kind) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      kind = 's';
      return parse_string(raw);
    }
    if (c == '{' || c == '[') return skip_container(raw, kind);
    raw.clear();
    while (pos_ < text_.size()) {
      const char v = text_[pos_];
      if (v == ',' || v == '}' || v == ']' ||
          std::isspace(static_cast<unsigned char>(v)) != 0)
        break;
      raw.push_back(v);
      ++pos_;
    }
    if (raw == "true" || raw == "false") {
      kind = 'b';
      return true;
    }
    if (raw == "null") {
      kind = '0';
      return true;
    }
    if (raw.empty()) return fail("expected value");
    kind = 'n';
    return true;
  }

 private:
  /// Skips a nested object/array (unknown keys from newer clients); the
  /// protocol's own fields are always scalars.
  [[nodiscard]] bool skip_container(std::string& raw, char& kind) {
    raw.clear();
    kind = 'c';
    int depth = 0;
    bool in_string = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (in_string) {
        if (c == '\\' && pos_ < text_.size())
          ++pos_;
        else if (c == '"')
          in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) return true;
      }
    }
    return fail("unterminated container");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool parse_u64(const std::string& raw, std::uint64_t& out) {
  if (raw.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_f64(const std::string& raw, double& out) {
  if (raw.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) return false;
  out = v;
  return true;
}

}  // namespace

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12e", v);
  out += buf;
}

ParsedRequest parse_request(std::string_view line) {
  ParsedRequest result;
  FlatJsonScanner scanner(line);
  if (!scanner.consume('{')) {
    result.error = "request is not a JSON object";
    return result;
  }
  Request& req = result.request;
  bool first = true;
  while (!scanner.peek('}')) {
    if (!first && !scanner.consume(',')) {
      result.error = "expected ',' between fields";
      return result;
    }
    first = false;
    std::string key;
    if (!scanner.parse_string(key) || !scanner.consume(':')) {
      result.error = scanner.error().empty() ? "expected \"key\":" : scanner.error();
      return result;
    }
    std::string raw;
    char kind = 0;
    if (!scanner.parse_value(raw, kind)) {
      result.error = scanner.error();
      return result;
    }
    if (kind == '0' || kind == 'c') continue;  // null / nested: field absent
    bool field_ok = true;
    if (key == "id") {
      field_ok = kind == 'n' && parse_u64(raw, req.id);
    } else if (key == "cmd") {
      field_ok = kind == 's';
      req.cmd = raw;
    } else if (key == "design") {
      field_ok = kind == 's';
      req.design = raw;
    } else if (key == "path") {
      field_ok = kind == 's';
      req.path = raw;
    } else if (key == "net") {
      field_ok = kind == 's';
      req.net = raw;
    } else if (key == "lenient") {
      field_ok = kind == 'b';
      req.lenient = raw == "true";
    } else if (key == "leaves_only") {
      field_ok = kind == 'b';
      req.leaves_only = raw == "true";
    } else if (key == "with_exact") {
      field_ok = kind == 'b';
      req.with_exact = raw == "true";
      req.has_with_exact = true;
    } else if (key == "exact_limit") {
      field_ok = kind == 'n' && parse_u64(raw, req.exact_limit);
    } else if (key == "timeout_ms") {
      field_ok = kind == 'n' && parse_u64(raw, req.timeout_ms);
    } else if (key == "fraction") {
      field_ok = kind == 'n' && parse_f64(raw, req.fraction);
    } else if (key == "trace") {
      field_ok = kind == 's';
      req.trace = raw;
    } else if (key == "span") {
      field_ok = kind == 's';
      req.span = raw;
    }
    // Unknown keys with scalar values are silently skipped.
    if (!field_ok) {
      result.error = "bad value for field \"" + key + "\"";
      return result;
    }
  }
  if (!scanner.consume('}') || !scanner.at_end()) {
    result.error = "trailing bytes after request object";
    return result;
  }
  if (req.cmd.empty()) {
    result.error = "missing \"cmd\"";
    return result;
  }
  result.ok = true;
  return result;
}

std::string encode_request(const Request& request) {
  std::string out = "{\"id\":" + std::to_string(request.id) + ",\"cmd\":";
  append_json_string(out, request.cmd);
  const auto field = [&out](std::string_view key, std::string_view value) {
    out += ",\"";
    out += key;
    out += "\":";
    append_json_string(out, value);
  };
  if (!request.design.empty()) field("design", request.design);
  if (!request.path.empty()) field("path", request.path);
  if (!request.net.empty()) field("net", request.net);
  if (request.lenient) out += ",\"lenient\":true";
  if (request.leaves_only) out += ",\"leaves_only\":true";
  if (request.has_with_exact)
    out += request.with_exact ? ",\"with_exact\":true" : ",\"with_exact\":false";
  if (request.exact_limit != 0)
    out += ",\"exact_limit\":" + std::to_string(request.exact_limit);
  if (request.timeout_ms != 0)
    out += ",\"timeout_ms\":" + std::to_string(request.timeout_ms);
  if (request.fraction != 0.0) {
    out += ",\"fraction\":";
    append_json_double(out, request.fraction);
  }
  if (!request.trace.empty()) field("trace", request.trace);
  if (!request.span.empty()) field("span", request.span);
  out.push_back('}');
  return out;
}

std::string error_response(std::uint64_t id, std::string_view code, std::string_view message) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":false,\"code\":";
  append_json_string(out, code);
  out += ",\"error\":";
  append_json_string(out, message);
  out.push_back('}');
  return out;
}

std::string overloaded_response(std::uint64_t id, std::uint64_t retry_after_ms,
                                std::string_view message) {
  std::string out = error_response(id, "overloaded", message);
  out.pop_back();  // reopen the object to append the hint
  out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms) + "}";
  return out;
}

bool response_ok(std::string_view response_line) {
  return response_line.find("\"ok\":true") != std::string_view::npos;
}

std::string response_error_code(std::string_view response_line) {
  if (response_ok(response_line)) return {};
  const std::string_view marker = "\"code\":\"";
  const std::size_t at = response_line.find(marker);
  if (at == std::string_view::npos) return {};
  const std::size_t begin = at + marker.size();
  const std::size_t end = response_line.find('"', begin);
  if (end == std::string_view::npos) return {};
  return std::string(response_line.substr(begin, end - begin));
}

std::uint64_t response_retry_after_ms(std::string_view response_line) {
  const std::string_view marker = "\"retry_after_ms\":";
  const std::size_t at = response_line.find(marker);
  if (at == std::string_view::npos) return 0;
  std::size_t pos = at + marker.size();
  std::uint64_t value = 0;
  while (pos < response_line.size() && response_line[pos] >= '0' && response_line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(response_line[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace rct::server
