#include "server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace rct::server {
namespace {

obs::Counter& http_request_counter() {
  static obs::Counter& c = obs::registry().counter("server.http.requests");
  return c;
}
obs::Counter& http_error_counter() {
  static obs::Counter& c = obs::registry().counter("server.http.errors");
  return c;
}

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(std::string listen_spec, Handler handler)
    : listen_(std::move(listen_spec)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (is_all_digits(listen_)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::strtoul(listen_.c_str(), nullptr, 10)));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "bind 127.0.0.1:" + listen_ + ": " + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    address_ = "http://127.0.0.1:" + std::to_string(port_);
  } else {
    sockaddr_un addr{};
    if (listen_.size() >= sizeof(addr.sun_path)) {
      error_ = "unix socket path too long: " + listen_;
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, listen_.c_str(), listen_.size() + 1);
    ::unlink(listen_.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "bind " + listen_ + ": " + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    address_ = "unix:" + listen_;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = "listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  obs::log::info("server.http.start", {{"address", std::string_view(address_)}});
  started_ = true;
  accept_thread_ = std::thread(&HttpServer::accept_loop, this);
  return true;
}

void HttpServer::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  reap_connections(true);
  if (!address_.empty() && address_.compare(0, 5, "unix:") == 0) ::unlink(listen_.c_str());
  obs::log::info("server.http.stop",
                 {{"requests", http_request_counter().value()}});
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    reap_connections(false);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Both directions bounded: a scraper that stalls mid-request or stops
    // reading the body cannot wedge stop().
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::make_unique<Connection>());
    Connection* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn, fd] {
      serve_connection(fd);
      conn->done.store(true, std::memory_order_release);
    });
  }
}

void HttpServer::reap_connections(bool all) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  if (all) {
    for (const auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::erase_if(conns_, [all](const std::unique_ptr<Connection>& conn) {
    if (!all && !conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
    return true;
  });
}

void HttpServer::serve_connection(int fd) {
  http_request_counter().add();
  // Read the request head (first line + headers).  One scrape per
  // connection; the body of a GET is empty, so the blank line ends it.
  std::string head;
  char chunk[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > 16384) break;  // oversized head: reject below
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(chunk, static_cast<std::size_t>(n));
  }
  HttpResponse response;
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string request_line = head.substr(0, line_end == std::string::npos ? 0 : line_end);
  const std::size_t method_end = request_line.find(' ');
  const std::size_t path_end = request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request_line.compare(0, method_end, "GET") != 0) {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    std::string path = request_line.substr(method_end + 1, path_end - method_end - 1);
    const std::size_t query = path.find('?');  // queries are ignored, not errors
    if (query != std::string::npos) path.resize(query);
    response = handler_(path);
  }
  if (response.status != 200) {
    http_error_counter().add();
    obs::log::debug("server.http.error",
                    {{"status", static_cast<std::uint64_t>(response.status)},
                     {"line", std::string_view(request_line)}});
  }
  (void)send_all(fd, render_response(response));
  ::shutdown(fd, SHUT_WR);
}

}  // namespace rct::server
