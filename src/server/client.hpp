#pragma once
// server::Client — the thin connection `rct client` (and the tests and
// bench/perf_serve) use to talk to a running `rct serve`.
//
// One blocking socket, one buffered line reader.  The target spec mirrors
// the server's listen spec: a unix socket path, or an all-digits TCP port
// on 127.0.0.1.
//
// Two tiers of API:
//
//   * roundtrip() — one send, one receive, no second chances.  Callers
//     that need wait-for-server semantics loop on connect() themselves.
//   * request()   — roundtrip wrapped in a RetryPolicy: reconnects after
//     a broken pipe / server restart, and backs off and resends when the
//     server sheds the request with a typed `overloaded` response.
//     Backoff is capped exponential with deterministic seeded jitter and
//     honors the server's `retry_after_ms` hint when it is larger.
//
// The retry loop is deliberately transport-level only: a response that
// arrives with any error code other than "overloaded" is a *successful*
// roundtrip from the client's point of view and is returned to the caller
// untouched.

#include <cstdint>
#include <string>

namespace rct::server {

/// Knobs for Client::request().  The defaults mean "no retries" so plain
/// callers keep roundtrip semantics; `rct client --retries N` turns the
/// resilience on.
struct RetryPolicy {
  int max_attempts = 1;             ///< total tries (1 = no retry)
  std::uint64_t budget_ms = 0;      ///< wall-clock cap on waiting (0 = none)
  std::uint64_t base_backoff_ms = 25;
  std::uint64_t max_backoff_ms = 2000;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;  ///< deterministic jitter stream
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `target` (unix path, or all-digits port on 127.0.0.1).
  /// False (with error()) on failure; never throws.  Remembers the target
  /// so request() can reconnect after the server restarts.
  [[nodiscard]] bool connect(const std::string& target);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Sends one request line (newline appended) and blocks for the one
  /// response line (stripped of its newline).  False on any socket error
  /// or a server that hung up mid-response.
  [[nodiscard]] bool roundtrip(const std::string& request_line, std::string& response_line);

  /// roundtrip() with resilience per `policy`: transport failures trigger
  /// reconnect + resend, `overloaded` responses trigger backoff + resend.
  /// Returns true when ANY response line was obtained (including a typed
  /// error the caller should surface); false only when every attempt died
  /// on the wire or the retry budget ran out.
  [[nodiscard]] bool request(const std::string& request_line, std::string& response_line,
                             const RetryPolicy& policy);

  /// Retries consumed by the last request() call (for stats/tests).
  [[nodiscard]] std::uint64_t last_retries() const { return last_retries_; }

  void close();

 private:
  /// Next jittered backoff for attempt number `attempt` (0-based retry
  /// index): uniform in [base/2, base] where base doubles per attempt and
  /// caps at max_backoff_ms.  xorshift64 over the policy seed keeps runs
  /// reproducible.
  [[nodiscard]] std::uint64_t backoff_ms(const RetryPolicy& policy, int attempt);

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last consumed line
  std::string error_;
  std::string target_;  ///< last successful connect() spec, for reconnects
  std::uint64_t jitter_state_ = 0;  ///< xorshift64 state (lazily seeded)
  std::uint64_t last_retries_ = 0;
};

}  // namespace rct::server
