#pragma once
// server::Client — the thin connection `rct client` (and the tests and
// bench/perf_serve) use to talk to a running `rct serve`.
//
// One blocking socket, one buffered line reader.  The target spec mirrors
// the server's listen spec: a unix socket path, or an all-digits TCP port
// on 127.0.0.1.  No retries, no reconnects — callers that need
// wait-for-server semantics loop on connect() themselves.

#include <string>

namespace rct::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `target` (unix path, or all-digits port on 127.0.0.1).
  /// False (with error()) on failure; never throws.
  [[nodiscard]] bool connect(const std::string& target);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Sends one request line (newline appended) and blocks for the one
  /// response line (stripped of its newline).  False on any socket error
  /// or a server that hung up mid-response.
  [[nodiscard]] bool roundtrip(const std::string& request_line, std::string& response_line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last consumed line
  std::string error_;
};

}  // namespace rct::server
