#pragma once
// The toolkit version the daemon reports (`ping` response, /healthz).
// Mirrors the CMake project() version — bump both together.

#include <string_view>

namespace rct {

inline constexpr std::string_view kVersion = "1.0.0";

}  // namespace rct
