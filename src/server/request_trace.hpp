#pragma once
// server request tracing — the pieces that carry one request's timeline
// across the client/server boundary.
//
// The server side is RequestTraceStore: a bounded map from a client-minted
// 16-hex trace id to the per-phase spans the server recorded while handling
// requests under that trace (queue wait, dispatch, cache lookup, context
// build, report build, render).  Spans are timestamped on the server's own
// steady clock (the global obs tracer epoch); the store keeps the most
// recent `capacity` traces and evicts FIFO, so a daemon that serves
// millions of requests holds a constant few hundred KB of tape.
//
// The client side fetches a slice with the `trace` protocol command and
// stitches both halves into one Chrome trace-event file:
//
//   1. The client records its own spans (connect, serialize, roundtrip)
//      on its clock, noting send/recv timestamps per traced request.
//   2. rebase_spans() maps the server slice onto the client clock with the
//      classic NTP midpoint estimate: the server's root "server.request"
//      span is centered inside the client's [send, recv] window (the
//      request and response legs are assumed symmetric), and every server
//      span shifts by that one offset.
//   3. stitched_chrome_json() emits one Perfetto-loadable file with the
//      client timeline as pid 1 and the server timeline as pid 2, each
//      with a process_name metadata event, and the trace id on every span
//      (args.trace) so the two halves are visibly one request.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rct::server {

/// One span of a traced request, on whichever clock recorded it.
struct TraceSpan {
  std::string name;       ///< `layer.component.op`, e.g. "server.request"
  std::string detail;     ///< optional args.detail (net name, cmd); "" = omitted
  std::uint64_t ts_ns = 0;   ///< start, clock-of-origin nanoseconds
  std::uint64_t dur_ns = 0;  ///< duration
};

/// Bounded trace_id -> spans map.  Thread-safe; record() from connection
/// and pool threads, fetch() from the `trace` command.
class RequestTraceStore {
 public:
  explicit RequestTraceStore(std::size_t capacity = 256) : capacity_(capacity) {}
  RequestTraceStore(const RequestTraceStore&) = delete;
  RequestTraceStore& operator=(const RequestTraceStore&) = delete;

  /// Appends one span under `trace_id`; a new id may evict the oldest
  /// trace (FIFO) once `capacity` traces are resident.
  void record(std::string_view trace_id, TraceSpan span);

  /// All spans recorded under `trace_id`, sorted by start time; empty when
  /// the id is unknown (never recorded, or already evicted).
  [[nodiscard]] std::vector<TraceSpan> fetch(std::string_view trace_id) const;

  /// Traces currently resident.
  [[nodiscard]] std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<TraceSpan>> traces_;
  std::deque<std::string> order_;  ///< insertion order, for FIFO eviction
};

/// Appends `"spans":[{"name":...,"ts_ns":N,"dur_ns":N},...]` to `out`
/// (the `trace` response payload).
void append_trace_spans_json(std::string& out, const std::vector<TraceSpan>& spans);

/// Parses the span array out of one `trace` response line (the inverse of
/// append_trace_spans_json, tolerant of unknown keys).  False on malformed
/// input; an ok response with no spans yields an empty vector.
[[nodiscard]] bool parse_trace_spans(std::string_view response_line,
                                     std::vector<TraceSpan>& out);

/// Shifts `server_spans` onto the client clock: the server's root
/// "server.request" span (the longest span when several share the name) is
/// centered inside the client's [send_ns, recv_ns] roundtrip window.  Spans
/// that would land before time zero clamp to zero.  No-op when the slice
/// is empty.
void rebase_spans(std::vector<TraceSpan>& server_spans, std::uint64_t send_ns,
                  std::uint64_t recv_ns);

/// One traced request, ready to stitch: the client's own spans plus the
/// fetched (and rebased) server slice, all on the client clock.  send_ns /
/// recv_ns are the client-side roundtrip window rebase_spans() anchors on.
struct StitchedTrace {
  std::string trace_id;
  std::uint64_t send_ns = 0;  ///< client clock when the request bytes left
  std::uint64_t recv_ns = 0;  ///< client clock when the response arrived
  std::vector<TraceSpan> client_spans;
  std::vector<TraceSpan> server_spans;  ///< rebased onto the client clock
};

/// One Chrome trace-event JSON document with every trace's client spans as
/// pid 1 ("rct client") and its server spans as pid 2 ("rct serve"); each
/// span carries its own args.trace, so a batch session stays one file with
/// per-request trace ids.
[[nodiscard]] std::string stitched_chrome_json(const std::vector<StitchedTrace>& traces);

/// A fresh 16-hex trace id (64 random bits; never "0000000000000000").
[[nodiscard]] std::string generate_trace_id();

}  // namespace rct::server
