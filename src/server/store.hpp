#pragma once
// server::DiskStore — a versioned, content-addressed on-disk backend for
// the engine's NetCache (the second level behind the in-memory tier).
//
// Layout: one file per NetKey under `dir`, sharded by the first byte of
// the key hash so no directory grows unbounded:
//
//   <dir>/ab/abcdef0123456789.rct
//
// Each file is a self-validating envelope: magic "RCTS", format version,
// the full key material (hash + packed words, so a hit is exact even
// across hash collisions — a colliding key reads as a miss), the
// serialized report rows (core::serialize_report) and a trailing FNV-1a
// checksum over everything before it.  Any mismatch — bad magic, wrong
// version, truncation, bit flips, foreign key — makes load() return
// nullopt; the caller recomputes and the damaged entry is simply
// overwritten by the next save.  Corrupt (as opposed to missing) entries
// are counted (`store.load.corrupt`) and logged (`store.corrupt`).
//
// Writes go to a per-process temp file followed by an atomic rename, so
// concurrent servers sharing one store directory never observe a torn
// entry: readers see the old file, the new file, or no file.  Reads mmap
// the entry and validate in place — no heap copy until the rows
// deserialize.
//
// DiskStore never throws past its interface: the constructor reports an
// unusable directory via ok()/error(), and load()/save() degrade to
// miss/no-op, matching the CacheBackend contract.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "engine/net_cache.hpp"

namespace rct::server {

class DiskStore final : public engine::CacheBackend {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  explicit DiskStore(std::string dir);

  /// False when the root directory could not be created/used; load() then
  /// always misses and save() is a no-op.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] std::optional<std::vector<core::NodeReport>> load(
      const engine::NetKey& key) override;
  void save(const engine::NetKey& key, const std::vector<core::NodeReport>& rows) override;

  /// Entry files currently present (walks the shard dirs; for stats/tests).
  [[nodiscard]] std::size_t entry_count() const;

  /// On-disk envelope format version this build reads and writes.
  static constexpr std::uint32_t kVersion = 1;

 private:
  [[nodiscard]] std::string path_for(const engine::NetKey& key) const;

  std::string dir_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace rct::server
