#pragma once
// server::DiskStore — a versioned, content-addressed on-disk backend for
// the engine's NetCache (the second level behind the in-memory tier).
//
// Layout: one file per NetKey under `dir`, sharded by the first byte of
// the key hash so no directory grows unbounded:
//
//   <dir>/ab/abcdef0123456789.rct
//
// Each file is a self-validating envelope: magic "RCTS", format version,
// the full key material (hash + packed words, so a hit is exact even
// across hash collisions — a colliding key reads as a miss), the
// serialized report rows (core::serialize_report) and a trailing FNV-1a
// checksum over everything before it.  Any mismatch — bad magic, wrong
// version, truncation, bit flips, foreign key — makes load() return
// nullopt; the caller recomputes and the damaged entry is simply
// overwritten by the next save.  Corrupt (as opposed to missing) entries
// are counted (`store.load.corrupt`) and logged (`store.corrupt`).
//
// Writes go to a per-process temp file followed by an atomic rename, so
// concurrent servers sharing one store directory never observe a torn
// entry: readers see the old file, the new file, or no file.  Reads mmap
// the entry and validate in place — no heap copy until the rows
// deserialize.
//
// Capacity management: a nonzero `max_bytes` arms LRU-by-atime GC.  Every
// save() tracks the store's total entry bytes; crossing the cap triggers a
// sweep that deletes least-recently-read entries (load() hits bump the
// file's atime explicitly, so relatime/noatime mounts still order
// correctly) down to 90% of the cap.  Sweeps are crash-safe: the victim
// list is journaled (`gc.journal`, written tmp+rename) before the first
// unlink, and the next constructor finishes a half-done sweep from the
// journal and clears orphaned `*.tmp.*` files left by crashed writers.
// Counted in `store.gc.sweeps` / `store.gc.evicted` / `store.gc.bytes_freed`
// / `store.gc.recovered`; the `store.bytes` gauge tracks the live total.
//
// DiskStore never throws past its interface: the constructor reports an
// unusable directory via ok()/error(), and load()/save() degrade to
// miss/no-op, matching the CacheBackend contract.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "engine/net_cache.hpp"

namespace rct::server {

class DiskStore final : public engine::CacheBackend {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.  A nonzero
  /// `max_bytes` caps total entry bytes via LRU-by-atime GC sweeps.
  explicit DiskStore(std::string dir, std::uint64_t max_bytes = 0);

  /// False when the root directory could not be created/used; load() then
  /// always misses and save() is a no-op.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] std::optional<std::vector<core::NodeReport>> load(
      const engine::NetKey& key) override;
  void save(const engine::NetKey& key, const std::vector<core::NodeReport>& rows) override;

  /// Entry files currently present (walks the shard dirs; for stats/tests).
  [[nodiscard]] std::size_t entry_count() const;

  /// Tracked total entry bytes / configured cap (0 = unbounded).
  [[nodiscard]] std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_bytes() const { return max_bytes_; }

  /// On-disk envelope format version this build reads and writes.
  static constexpr std::uint32_t kVersion = 1;

 private:
  [[nodiscard]] std::string path_for(const engine::NetKey& key) const;
  /// Finishes a journaled sweep a crashed process left behind and removes
  /// orphaned writer temp files; then seeds total_bytes_ from a full walk.
  void recover_and_scan();
  /// LRU-by-atime sweep down to 90% of max_bytes_.  One sweeper at a time;
  /// concurrent callers skip.  Never throws (an injected mid-sweep fault
  /// leaves the journal behind, exactly like a crash).
  void sweep();

  std::string dir_;
  bool ok_ = false;
  std::string error_;
  std::uint64_t max_bytes_ = 0;
  std::atomic<std::uint64_t> total_bytes_{0};
  std::mutex gc_mutex_;
};

}  // namespace rct::server
