#include "server/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace rct::server {
namespace {

obs::Counter& load_hit_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.hits");
  return c;
}
obs::Counter& load_miss_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.misses");
  return c;
}
obs::Counter& load_corrupt_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.corrupt");
  return c;
}
obs::Counter& save_write_counter() {
  static obs::Counter& c = obs::registry().counter("store.save.writes");
  return c;
}
obs::Counter& save_error_counter() {
  static obs::Counter& c = obs::registry().counter("store.save.errors");
  return c;
}

constexpr char kMagic[4] = {'R', 'C', 'T', 'S'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t fnv1a_bytes(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

/// mmap'd read-only view of one entry file; unmaps on destruction.
struct MappedFile {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  int fd = -1;

  explicit MappedFile(const std::string& path) {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) return;
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) return;
    data = static_cast<const unsigned char*>(p);
    size = static_cast<std::size_t>(st.st_size);
  }
  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<unsigned char*>(data), size);
    if (fd >= 0) ::close(fd);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] bool open() const { return fd >= 0; }
  [[nodiscard]] bool mapped() const { return data != nullptr; }
};

}  // namespace

DiskStore::DiskStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create store directory '" + dir_ + "': " + ec.message();
    return;
  }
  if (!std::filesystem::is_directory(dir_, ec) || ec) {
    error_ = "store path '" + dir_ + "' is not a directory";
    return;
  }
  ok_ = true;
}

std::string DiskStore::path_for(const engine::NetKey& key) const {
  const std::string hex = hash_hex(key.hash);
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".rct";
}

std::optional<std::vector<core::NodeReport>> DiskStore::load(const engine::NetKey& key) {
  if (!ok_) return std::nullopt;
  const std::string path = path_for(key);
  MappedFile file(path);
  if (!file.open()) {
    load_miss_counter().add();
    return std::nullopt;
  }
  const auto corrupt = [&](const char* why) -> std::optional<std::vector<core::NodeReport>> {
    load_corrupt_counter().add();
    obs::log::warn("store.corrupt", {{"path", std::string_view(path)}, {"reason", why}});
    return std::nullopt;
  };
  // Fixed header: magic(4) version(4) hash(8) n_words(8).
  if (!file.mapped() || file.size < 24) return corrupt("truncated header");
  const unsigned char* p = file.data;
  if (std::memcmp(p, kMagic, 4) != 0) return corrupt("bad magic");
  if (get_u32(p + 4) != kVersion) return corrupt("unsupported version");
  // Checksum covers everything before the trailing 8 bytes.
  if (file.size < 24 + 8) return corrupt("truncated checksum");
  const std::size_t body = file.size - 8;
  if (get_u64(p + body) != fnv1a_bytes(p, body)) return corrupt("checksum mismatch");
  const std::uint64_t stored_hash = get_u64(p + 8);
  const std::uint64_t n_words = get_u64(p + 16);
  if (n_words > (body - 24) / 8) return corrupt("key overruns file");
  std::size_t off = 24;
  // Exact key comparison: a hash-colliding foreign key is a miss, not an
  // error — the slot just belongs to someone else.
  bool key_matches = stored_hash == key.hash && n_words == key.words.size();
  for (std::uint64_t i = 0; i < n_words; ++i, off += 8) {
    if (key_matches && get_u64(p + off) != key.words[i]) key_matches = false;
  }
  if (off + 8 > body) return corrupt("truncated payload length");
  const std::uint64_t payload_len = get_u64(p + off);
  off += 8;
  if (payload_len != body - off) return corrupt("payload length mismatch");
  if (!key_matches) {
    load_miss_counter().add();
    return std::nullopt;
  }
  auto rows = core::deserialize_report(
      std::string_view(reinterpret_cast<const char*>(p + off), payload_len));
  if (!rows) return corrupt("payload deserialization failed");
  load_hit_counter().add();
  return rows;
}

void DiskStore::save(const engine::NetKey& key, const std::vector<core::NodeReport>& rows) {
  if (!ok_) return;
  const std::string path = path_for(key);
  const auto slash = path.rfind('/');
  std::error_code ec;
  std::filesystem::create_directories(path.substr(0, slash), ec);
  if (ec) {
    save_error_counter().add();
    return;
  }

  std::string blob;
  blob.append(kMagic, 4);
  put_u32(blob, kVersion);
  put_u64(blob, key.hash);
  put_u64(blob, key.words.size());
  for (const std::uint64_t w : key.words) put_u64(blob, w);
  const std::string payload = core::serialize_report(rows);
  put_u64(blob, payload.size());
  blob += payload;
  put_u64(blob, fnv1a_bytes(reinterpret_cast<const unsigned char*>(blob.data()), blob.size()));

  // Unique temp name per process + call so concurrent writers (threads or
  // separate server instances sharing the store) never clobber each
  // other's in-flight file; rename() makes publication atomic.
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(static_cast<std::uint64_t>(::getpid())) +
                          "." + std::to_string(write_seq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    save_error_counter().add();
    return;
  }
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    save_error_counter().add();
    std::remove(tmp.c_str());
    return;
  }
  save_write_counter().add();
}

std::size_t DiskStore::entry_count() const {
  if (!ok_) return 0;
  std::size_t n = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir_, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".rct") ++n;
  }
  return n;
}

}  // namespace rct::server
