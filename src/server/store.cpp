#include "server/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "robust/fault.hpp"

namespace rct::server {
namespace {

obs::Counter& load_hit_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.hits");
  return c;
}
obs::Counter& load_miss_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.misses");
  return c;
}
obs::Counter& load_corrupt_counter() {
  static obs::Counter& c = obs::registry().counter("store.load.corrupt");
  return c;
}
obs::Counter& save_write_counter() {
  static obs::Counter& c = obs::registry().counter("store.save.writes");
  return c;
}
obs::Counter& save_error_counter() {
  static obs::Counter& c = obs::registry().counter("store.save.errors");
  return c;
}
obs::Counter& gc_sweep_counter() {
  static obs::Counter& c = obs::registry().counter("store.gc.sweeps");
  return c;
}
obs::Counter& gc_evicted_counter() {
  static obs::Counter& c = obs::registry().counter("store.gc.evicted");
  return c;
}
obs::Counter& gc_bytes_freed_counter() {
  static obs::Counter& c = obs::registry().counter("store.gc.bytes_freed");
  return c;
}
obs::Counter& gc_recovered_counter() {
  static obs::Counter& c = obs::registry().counter("store.gc.recovered");
  return c;
}
obs::Counter& gc_error_counter() {
  static obs::Counter& c = obs::registry().counter("store.gc.errors");
  return c;
}
obs::Gauge& store_bytes_gauge() {
  static obs::Gauge& g = obs::registry().gauge("store.bytes");
  return g;
}

constexpr char kMagic[4] = {'R', 'C', 'T', 'S'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t fnv1a_bytes(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

/// mmap'd read-only view of one entry file; unmaps on destruction.
struct MappedFile {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  int fd = -1;

  explicit MappedFile(const std::string& path) {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) return;
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) return;
    data = static_cast<const unsigned char*>(p);
    size = static_cast<std::size_t>(st.st_size);
  }
  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<unsigned char*>(data), size);
    if (fd >= 0) ::close(fd);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] bool open() const { return fd >= 0; }
  [[nodiscard]] bool mapped() const { return data != nullptr; }
};

}  // namespace

DiskStore::DiskStore(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create store directory '" + dir_ + "': " + ec.message();
    return;
  }
  if (!std::filesystem::is_directory(dir_, ec) || ec) {
    error_ = "store path '" + dir_ + "' is not a directory";
    return;
  }
  ok_ = true;
  recover_and_scan();
}

void DiskStore::recover_and_scan() {
  // 1. A leftover gc.journal means a sweep died between journaling its
  //    victim list and removing the journal: finish it.  Paths in the
  //    journal are dir-relative, one per line; victims already unlinked by
  //    the crashed sweep just miss.
  const std::string journal = dir_ + "/gc.journal";
  if (std::FILE* f = std::fopen(journal.c_str(), "rb")) {
    std::string text;
    char chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) text.append(chunk, n);
    std::fclose(f);
    std::size_t recovered = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      const std::string rel = text.substr(pos, end - pos);
      pos = end + 1;
      if (rel.empty() || rel.find("..") != std::string::npos) continue;
      if (std::remove((dir_ + "/" + rel).c_str()) == 0) ++recovered;
    }
    std::remove(journal.c_str());
    gc_recovered_counter().add(recovered);
    obs::log::info("store.gc.recovered",
                   {{"dir", std::string_view(dir_)},
                    {"entries", static_cast<std::uint64_t>(recovered)}});
  }
  // 2. Orphaned writer temp files.  Live writers hold a tmp for
  //    microseconds, so anything older than a minute is a crash leftover;
  //    the age guard keeps a starting server from clobbering a concurrent
  //    writer's in-flight file.
  std::uint64_t total = 0;
  std::error_code ec;
  const auto now = std::filesystem::file_time_type::clock::now();
  for (std::filesystem::recursive_directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".rct.tmp.") != std::string::npos) {
      const auto mtime = std::filesystem::last_write_time(it->path(), ec);
      if (!ec && now - mtime > std::chrono::seconds(60))
        std::filesystem::remove(it->path(), ec);
      continue;
    }
    if (it->path().extension() == ".rct")
      total += static_cast<std::uint64_t>(it->file_size(ec));
  }
  total_bytes_.store(total, std::memory_order_relaxed);
  store_bytes_gauge().set(static_cast<double>(total));
}

std::string DiskStore::path_for(const engine::NetKey& key) const {
  const std::string hex = hash_hex(key.hash);
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".rct";
}

std::optional<std::vector<core::NodeReport>> DiskStore::load(const engine::NetKey& key) {
  if (!ok_) return std::nullopt;
  const std::string path = path_for(key);
  MappedFile file(path);
  if (!file.open()) {
    load_miss_counter().add();
    return std::nullopt;
  }
  const auto corrupt = [&](const char* why) -> std::optional<std::vector<core::NodeReport>> {
    load_corrupt_counter().add();
    obs::log::warn("store.corrupt", {{"path", std::string_view(path)}, {"reason", why}});
    return std::nullopt;
  };
  // Fixed header: magic(4) version(4) hash(8) n_words(8).
  if (!file.mapped() || file.size < 24) return corrupt("truncated header");
  const unsigned char* p = file.data;
  if (std::memcmp(p, kMagic, 4) != 0) return corrupt("bad magic");
  if (get_u32(p + 4) != kVersion) return corrupt("unsupported version");
  // Checksum covers everything before the trailing 8 bytes.
  if (file.size < 24 + 8) return corrupt("truncated checksum");
  const std::size_t body = file.size - 8;
  if (get_u64(p + body) != fnv1a_bytes(p, body)) return corrupt("checksum mismatch");
  const std::uint64_t stored_hash = get_u64(p + 8);
  const std::uint64_t n_words = get_u64(p + 16);
  if (n_words > (body - 24) / 8) return corrupt("key overruns file");
  std::size_t off = 24;
  // Exact key comparison: a hash-colliding foreign key is a miss, not an
  // error — the slot just belongs to someone else.
  bool key_matches = stored_hash == key.hash && n_words == key.words.size();
  for (std::uint64_t i = 0; i < n_words; ++i, off += 8) {
    if (key_matches && get_u64(p + off) != key.words[i]) key_matches = false;
  }
  if (off + 8 > body) return corrupt("truncated payload length");
  const std::uint64_t payload_len = get_u64(p + off);
  off += 8;
  if (payload_len != body - off) return corrupt("payload length mismatch");
  if (!key_matches) {
    load_miss_counter().add();
    return std::nullopt;
  }
  auto rows = core::deserialize_report(
      std::string_view(reinterpret_cast<const char*>(p + off), payload_len));
  if (!rows) return corrupt("payload deserialization failed");
  load_hit_counter().add();
  // Bump the entry's atime so LRU GC sees the read even on relatime /
  // noatime mounts (mmap reads rarely touch atime at all).
  timespec times[2];
  times[0].tv_sec = 0;
  times[0].tv_nsec = UTIME_NOW;
  times[1].tv_sec = 0;
  times[1].tv_nsec = UTIME_OMIT;
  (void)::utimensat(AT_FDCWD, path.c_str(), times, 0);
  return rows;
}

void DiskStore::save(const engine::NetKey& key, const std::vector<core::NodeReport>& rows) {
  if (!ok_) return;
  const std::string path = path_for(key);
  const auto slash = path.rfind('/');
  std::error_code ec;
  std::filesystem::create_directories(path.substr(0, slash), ec);
  if (ec) {
    save_error_counter().add();
    return;
  }

  std::string blob;
  blob.append(kMagic, 4);
  put_u32(blob, kVersion);
  put_u64(blob, key.hash);
  put_u64(blob, key.words.size());
  for (const std::uint64_t w : key.words) put_u64(blob, w);
  const std::string payload = core::serialize_report(rows);
  put_u64(blob, payload.size());
  blob += payload;
  put_u64(blob, fnv1a_bytes(reinterpret_cast<const unsigned char*>(blob.data()), blob.size()));

  // Unique temp name per process + call so concurrent writers (threads or
  // separate server instances sharing the store) never clobber each
  // other's in-flight file; rename() makes publication atomic.
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(static_cast<std::uint64_t>(::getpid())) +
                          "." + std::to_string(write_seq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    save_error_counter().add();
    return;
  }
  // Size of the entry this rename replaces (0 when new) so the running
  // total stays a delta sum, not a rescan.
  struct stat old_st{};
  const std::uint64_t old_size =
      ::stat(path.c_str(), &old_st) == 0 ? static_cast<std::uint64_t>(old_st.st_size) : 0;
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    save_error_counter().add();
    std::remove(tmp.c_str());
    return;
  }
  save_write_counter().add();
  const std::uint64_t total =
      total_bytes_.fetch_add(blob.size() - old_size, std::memory_order_relaxed) +
      blob.size() - old_size;
  store_bytes_gauge().set(static_cast<double>(total));
  if (max_bytes_ > 0 && total > max_bytes_) sweep();
}

void DiskStore::sweep() {
  // One sweeper at a time; a save that loses the race just returns — the
  // winner is already freeing space on its behalf.
  std::unique_lock<std::mutex> lock(gc_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (total_bytes_.load(std::memory_order_relaxed) <= max_bytes_) return;

  struct Victim {
    std::string rel;  ///< dir-relative path ("ab/abcd....rct")
    std::uint64_t size = 0;
    std::int64_t atime_s = 0;
    std::int64_t atime_ns = 0;
  };
  std::vector<Victim> entries;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().extension() != ".rct") continue;
    struct stat st{};
    if (::stat(it->path().c_str(), &st) != 0) continue;
    Victim v;
    v.rel = std::filesystem::relative(it->path(), dir_, ec).string();
    if (ec || v.rel.empty()) continue;
    v.size = static_cast<std::uint64_t>(st.st_size);
    v.atime_s = st.st_atim.tv_sec;
    v.atime_ns = st.st_atim.tv_nsec;
    entries.push_back(std::move(v));
  }
  // Oldest read first; path tie-break keeps the order deterministic when
  // a burst of saves lands within one clock tick.
  std::sort(entries.begin(), entries.end(), [](const Victim& a, const Victim& b) {
    if (a.atime_s != b.atime_s) return a.atime_s < b.atime_s;
    if (a.atime_ns != b.atime_ns) return a.atime_ns < b.atime_ns;
    return a.rel < b.rel;
  });
  const std::uint64_t target = max_bytes_ - max_bytes_ / 10;  // free to 90% of cap
  std::uint64_t projected = total_bytes_.load(std::memory_order_relaxed);
  std::size_t n_victims = 0;
  while (n_victims < entries.size() && projected > target)
    projected -= entries[n_victims++].size;
  if (n_victims == 0) return;

  // Crash safety: journal the victim list (tmp+rename, like entry writes)
  // BEFORE the first unlink.  A crash mid-sweep leaves the journal; the
  // next constructor finishes the deletions from it.
  const std::string journal = dir_ + "/gc.journal";
  {
    const std::string tmp = journal + ".tmp." + std::to_string(static_cast<std::uint64_t>(::getpid()));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      gc_error_counter().add();
      return;
    }
    bool wrote = true;
    for (std::size_t i = 0; i < n_victims; ++i) {
      const std::string line = entries[i].rel + "\n";
      wrote = wrote && std::fwrite(line.data(), 1, line.size(), f) == line.size();
    }
    if (std::fclose(f) != 0 || !wrote || std::rename(tmp.c_str(), journal.c_str()) != 0) {
      gc_error_counter().add();
      std::remove(tmp.c_str());
      return;
    }
  }

  std::size_t evicted = 0;
  std::uint64_t bytes_freed = 0;
  try {
    for (std::size_t i = 0; i < n_victims; ++i) {
      // Chaos site: dying here (journal written, some victims gone) is the
      // partial-sweep crash the constructor's recovery path covers.
      robust::fault::maybe_throw("store.gc.sweep");
      if (std::remove((dir_ + "/" + entries[i].rel).c_str()) == 0) {
        ++evicted;
        bytes_freed += entries[i].size;
        total_bytes_.fetch_sub(entries[i].size, std::memory_order_relaxed);
      }
    }
  } catch (const robust::Error&) {
    // Injected crash: leave the journal in place (the whole point) and
    // keep serving — save() degrades, it never throws.
    gc_error_counter().add();
    gc_evicted_counter().add(evicted);
    gc_bytes_freed_counter().add(bytes_freed);
    store_bytes_gauge().set(static_cast<double>(total_bytes_.load(std::memory_order_relaxed)));
    return;
  }
  std::remove(journal.c_str());
  gc_sweep_counter().add();
  gc_evicted_counter().add(evicted);
  gc_bytes_freed_counter().add(bytes_freed);
  const std::uint64_t total = total_bytes_.load(std::memory_order_relaxed);
  store_bytes_gauge().set(static_cast<double>(total));
  obs::log::info("store.gc",
                 {{"dir", std::string_view(dir_)},
                  {"evicted", static_cast<std::uint64_t>(evicted)},
                  {"bytes_freed", bytes_freed},
                  {"bytes_now", total}});
}

std::size_t DiskStore::entry_count() const {
  if (!ok_) return 0;
  std::size_t n = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir_, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".rct") ++n;
  }
  return n;
}

}  // namespace rct::server
