#include "server/request_trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "server/protocol.hpp"

namespace rct::server {

void RequestTraceStore::record(std::string_view trace_id, TraceSpan span) {
  if (trace_id.empty() || capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = traces_.find(std::string(trace_id));
  if (it == traces_.end()) {
    while (order_.size() >= capacity_) {
      traces_.erase(order_.front());
      order_.pop_front();
    }
    order_.emplace_back(trace_id);
    it = traces_.emplace(std::string(trace_id), std::vector<TraceSpan>{}).first;
  }
  it->second.push_back(std::move(span));
}

std::vector<TraceSpan> RequestTraceStore::fetch(std::string_view trace_id) const {
  std::vector<TraceSpan> spans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = traces_.find(std::string(trace_id));
    if (it != traces_.end()) spans = it->second;
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) { return a.ts_ns < b.ts_ns; });
  return spans;
}

std::size_t RequestTraceStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

void append_trace_spans_json(std::string& out, const std::vector<TraceSpan>& spans) {
  out += "\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, s.name);
    if (!s.detail.empty()) {
      out += ",\"detail\":";
      append_json_string(out, s.detail);
    }
    out += ",\"ts_ns\":" + std::to_string(s.ts_ns);
    out += ",\"dur_ns\":" + std::to_string(s.dur_ns);
    out.push_back('}');
  }
  out.push_back(']');
}

namespace {

/// Cursor over the span array text; just enough JSON to read back what
/// append_trace_spans_json wrote (tolerating unknown scalar keys).
struct SpanCursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: out.push_back('?'); break;
      }
    }
    return false;
  }
  bool parse_number(std::uint64_t& out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == '-' ||
            text[pos] == '+' || text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    if (pos == start) return false;
    out = std::strtoull(std::string(text.substr(start, pos - start)).c_str(), nullptr, 10);
    return true;
  }
};

}  // namespace

bool parse_trace_spans(std::string_view response_line, std::vector<TraceSpan>& out) {
  out.clear();
  const std::size_t at = response_line.find("\"spans\":[");
  if (at == std::string_view::npos) return false;
  SpanCursor cur{response_line.substr(at + 8), 0};
  if (!cur.consume('[')) return false;
  bool first = true;
  while (!cur.peek(']')) {
    if (!first && !cur.consume(',')) return false;
    first = false;
    if (!cur.consume('{')) return false;
    TraceSpan span;
    bool first_field = true;
    while (!cur.peek('}')) {
      if (!first_field && !cur.consume(',')) return false;
      first_field = false;
      std::string key;
      if (!cur.parse_string(key) || !cur.consume(':')) return false;
      if (key == "name") {
        if (!cur.parse_string(span.name)) return false;
      } else if (key == "detail") {
        if (!cur.parse_string(span.detail)) return false;
      } else if (key == "ts_ns") {
        if (!cur.parse_number(span.ts_ns)) return false;
      } else if (key == "dur_ns") {
        if (!cur.parse_number(span.dur_ns)) return false;
      } else if (cur.peek('"')) {
        std::string ignored;
        if (!cur.parse_string(ignored)) return false;
      } else {
        std::uint64_t ignored = 0;
        if (!cur.parse_number(ignored)) return false;
      }
    }
    if (!cur.consume('}')) return false;
    out.push_back(std::move(span));
  }
  return cur.consume(']');
}

void rebase_spans(std::vector<TraceSpan>& server_spans, std::uint64_t send_ns,
                  std::uint64_t recv_ns) {
  if (server_spans.empty()) return;
  // Anchor on the root request span: the handler's own timing, so queue
  // and phase children stay nested under it after the shift.
  const TraceSpan* root = nullptr;
  for (const TraceSpan& s : server_spans)
    if (s.name == "server.request" && (root == nullptr || s.dur_ns > root->dur_ns)) root = &s;
  if (root == nullptr) root = &server_spans.front();
  // NTP midpoint: center the server's handling inside the client's
  // roundtrip window, splitting the residual network time evenly between
  // the request and response legs.
  const std::uint64_t window = recv_ns > send_ns ? recv_ns - send_ns : 0;
  const std::uint64_t slack = window > root->dur_ns ? (window - root->dur_ns) / 2 : 0;
  const std::uint64_t target = send_ns + slack;
  const std::uint64_t anchor = root->ts_ns;
  for (TraceSpan& s : server_spans) {
    // Shift = target - anchor, applied without signed overflow either way.
    if (target >= anchor)
      s.ts_ns += target - anchor;
    else
      s.ts_ns = s.ts_ns > anchor - target ? s.ts_ns - (anchor - target) : 0;
  }
}

namespace {

/// Microseconds with nanosecond precision, fixed format (trace viewers do
/// not accept exponents in ts/dur).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_process(std::string& out, int pid, std::string_view name, bool& first) {
  if (!first) out.push_back(',');
  first = false;
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"args\":{\"name\":";
  append_json_string(out, name);
  out += "}}";
}

void append_spans(std::string& out, const std::vector<TraceSpan>& spans, int pid,
                  std::string_view cat, std::string_view trace_id, bool& first) {
  for (const TraceSpan& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":";
    append_json_string(out, cat);
    out += ",\"ph\":\"X\",\"pid\":" + std::to_string(pid) + ",\"tid\":1,\"ts\":";
    append_us(out, s.ts_ns);
    out += ",\"dur\":";
    append_us(out, s.dur_ns);
    out += ",\"args\":{\"trace\":";
    append_json_string(out, trace_id);
    if (!s.detail.empty()) {
      out += ",\"detail\":";
      append_json_string(out, s.detail);
    }
    out += "}}";
  }
}

}  // namespace

std::string stitched_chrome_json(const std::vector<StitchedTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  append_process(out, 1, "rct client", first);
  append_process(out, 2, "rct serve", first);
  for (const StitchedTrace& t : traces) {
    append_spans(out, t.client_spans, 1, "client", t.trace_id, first);
    append_spans(out, t.server_spans, 2, "server", t.trace_id, first);
  }
  out += "]}";
  return out;
}

std::string generate_trace_id() {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  // Seeded once per process from the strongest local entropy plus clock
  // and pid, so concurrent clients mint distinct ids.
  static std::mt19937_64 rng([] {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= static_cast<std::uint64_t>(::getpid()) << 17;
    return seed;
  }());
  std::uint64_t value = 0;
  while (value == 0) value = rng();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace rct::server
