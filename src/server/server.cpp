#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <utility>

#include "engine/parallel_parse.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/mapped_file.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "server/version.hpp"

namespace rct::server {
namespace {

obs::Counter& request_counter() {
  static obs::Counter& c = obs::registry().counter("server.requests");
  return c;
}
obs::Counter& request_error_counter() {
  static obs::Counter& c = obs::registry().counter("server.request.errors");
  return c;
}
obs::Counter& connection_counter() {
  static obs::Counter& c = obs::registry().counter("server.connections");
  return c;
}
obs::Counter& disconnect_counter() {
  static obs::Counter& c = obs::registry().counter("server.disconnects");
  return c;
}
obs::Gauge& active_connections_gauge() {
  static obs::Gauge& g = obs::registry().gauge("server.connections.active");
  return g;
}
obs::Histogram& request_histogram() {
  static obs::Histogram& h = obs::registry().histogram("server.request.seconds");
  return h;
}
obs::Counter& shed_counter() {
  static obs::Counter& c = obs::registry().counter("server.requests.shed");
  return c;
}
obs::Counter& conn_rejected_counter() {
  static obs::Counter& c = obs::registry().counter("server.conn.rejected");
  return c;
}
obs::Counter& request_too_large_counter() {
  static obs::Counter& c = obs::registry().counter("server.requests.too_large");
  return c;
}
obs::Counter& idle_close_counter() {
  static obs::Counter& c = obs::registry().counter("server.conn.idle_closed");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::registry().gauge("server.queue.depth");
  return g;
}
obs::Gauge& state_gauge() {
  static obs::Gauge& g = obs::registry().gauge("server.state");
  return g;
}

/// Per-command latency split.  Only the protocol's own vocabulary gets an
/// instrument — an unknown command must not mint registry entries — and
/// each is a function-local static so the hot path stays one atomic add.
obs::Histogram* command_histogram(const std::string& cmd) {
  if (cmd == "report") {
    static obs::Histogram& h = obs::registry().histogram("server.request.report.seconds");
    return &h;
  }
  if (cmd == "bounds") {
    static obs::Histogram& h = obs::registry().histogram("server.request.bounds.seconds");
    return &h;
  }
  if (cmd == "load") {
    static obs::Histogram& h = obs::registry().histogram("server.request.load.seconds");
    return &h;
  }
  if (cmd == "ping") {
    static obs::Histogram& h = obs::registry().histogram("server.request.ping.seconds");
    return &h;
  }
  if (cmd == "stats") {
    static obs::Histogram& h = obs::registry().histogram("server.request.stats.seconds");
    return &h;
  }
  if (cmd == "evict") {
    static obs::Histogram& h = obs::registry().histogram("server.request.evict.seconds");
    return &h;
  }
  if (cmd == "trace") {
    static obs::Histogram& h = obs::registry().histogram("server.request.trace.seconds");
    return &h;
  }
  if (cmd == "shutdown") {
    static obs::Histogram& h = obs::registry().histogram("server.request.shutdown.seconds");
    return &h;
  }
  return nullptr;
}

/// RAII phase span for one traced request: on destruction the interval is
/// taped into the trace store (always, when tracing) and into the global
/// tracer (when --trace-out armed it), so the same phase shows up in both
/// the stitched client timeline and the server's own trace file.  `name`
/// must be a static string.
class TracePhase {
 public:
  TracePhase(RequestTraceStore* store, const std::string* trace_id, const char* name,
             std::string detail = {})
      : store_(store), trace_id_(trace_id), name_(name), detail_(std::move(detail)) {
    if (store_ != nullptr) start_ns_ = obs::tracer().now_ns();
  }
  TracePhase(const TracePhase&) = delete;
  TracePhase& operator=(const TracePhase&) = delete;
  ~TracePhase() {
    if (store_ == nullptr) return;
    const std::uint64_t dur_ns = obs::tracer().now_ns() - start_ns_;
    if (obs::tracer().enabled())
      obs::tracer().record(name_, "server", start_ns_, dur_ns, detail_);
    store_->record(*trace_id_, TraceSpan{name_, detail_, start_ns_, dur_ns});
  }

 private:
  RequestTraceStore* store_;  ///< nullptr = request is untraced, record nothing
  const std::string* trace_id_;
  const char* name_;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
};

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::uint64_t fnv1a_text(std::string_view text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// 12-hex content handle of a design (FNV-1a of the raw file bytes,
/// truncated — short enough to type, long enough that two designs loaded
/// into one server never collide in practice).
std::string design_handle(std::string_view file_bytes) {
  char buf[13];
  std::snprintf(buf, sizeof(buf), "%012llx",
                static_cast<unsigned long long>(fnv1a_text(file_bytes) & 0xffffffffffffULL));
  return buf;
}

const char* source_name(engine::CacheSource source) {
  switch (source) {
    case engine::CacheSource::kMemory: return "memory";
    case engine::CacheSource::kBackend: return "store";
    case engine::CacheSource::kMiss: return "computed";
  }
  return "computed";
}

/// Sends all of `data`; false on any socket error.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void append_row_json(std::string& out, const core::NodeReport& row, bool bounds_only) {
  out += "{\"name\":";
  append_json_string(out, row.name);
  out += ",\"depth\":" + std::to_string(row.depth);
  out += ",\"elmore\":";
  append_json_double(out, row.elmore);
  out += ",\"lower_bound\":";
  append_json_double(out, row.lower_bound);
  out += ",\"prh_tmin\":";
  append_json_double(out, row.prh_tmin);
  out += ",\"prh_tmax\":";
  append_json_double(out, row.prh_tmax);
  if (!bounds_only) {
    out += ",\"sigma\":";
    append_json_double(out, row.sigma);
    out += ",\"skewness\":";
    append_json_double(out, row.skewness);
    out += ",\"single_pole\":";
    append_json_double(out, row.single_pole);
    if (row.exact_delay.has_value()) {
      out += ",\"exact_delay\":";
      append_json_double(out, *row.exact_delay);
    }
    if (row.exact_rise.has_value()) {
      out += ",\"exact_rise\":";
      append_json_double(out, *row.exact_rise);
    }
  }
  if (row.degraded) out += ",\"degraded\":true";
  out.push_back('}');
}

/// Steady-clock nanoseconds since an arbitrary epoch (for shed freshness).
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view server_state_name(ServerState state) {
  switch (state) {
    case ServerState::kStarting: return "starting";
    case ServerState::kServing: return "serving";
    case ServerState::kDegraded: return "degraded";
    case ServerState::kDraining: return "draining";
    case ServerState::kStopped: return "stopped";
  }
  return "?";
}

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      pool_(options_.jobs),
      cache_(16, options_.cache_max_entries) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_shared<DiskStore>(options_.store_dir, options_.store_max_bytes);
    if (store_->ok()) {
      cache_.set_backend(store_);
    } else {
      obs::log::warn("server.store_disabled", {{"error", std::string_view(store_->error())}});
      store_.reset();
    }
  }
}

Server::~Server() { stop(); }

bool Server::start() {
  const std::string& spec = options_.listen;
  if (is_all_digits(spec)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::strtoul(spec.c_str(), nullptr, 10)));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "bind 127.0.0.1:" + spec + ": " + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    address_ = "tcp:127.0.0.1:" + std::to_string(port_);
  } else {
    sockaddr_un addr{};
    if (spec.size() >= sizeof(addr.sun_path)) {
      error_ = "unix socket path too long: " + spec;
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, spec.c_str(), spec.size() + 1);
    ::unlink(spec.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "bind " + spec + ": " + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    address_ = "unix:" + spec;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = "listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (!options_.http.empty()) {
    http_ = std::make_unique<HttpServer>(
        options_.http, [this](std::string_view path) { return route_http(path); });
    if (!http_->start()) {
      error_ = "http: " + http_->error();
      http_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  obs::log::info("server.start", {{"address", std::string_view(address_)},
                                  {"threads", static_cast<std::uint64_t>(pool_.thread_count())}});
  accept_thread_ = std::thread(&Server::accept_loop, this);
  state_.store(static_cast<int>(ServerState::kServing), std::memory_order_release);
  update_gauges();
  return true;
}

ServerState Server::current_state() const {
  const auto base = static_cast<ServerState>(state_.load(std::memory_order_acquire));
  if (base != ServerState::kServing) return base;
  // Degraded is an overlay, not a stored state: the queue is nearly full,
  // or admission shed something in the last 5 seconds.
  const std::size_t cap = effective_queue_cap();
  if (cap != 0 && queue_depth_.load(std::memory_order_relaxed) >= cap - cap / 4)
    return ServerState::kDegraded;
  const std::int64_t last = last_shed_ns_.load(std::memory_order_relaxed);
  if (last != 0 && steady_now_ns() - last < 5'000'000'000LL) return ServerState::kDegraded;
  return ServerState::kServing;
}

void Server::wait() {
  // Polls (100ms) instead of a pure wait so a signal handler's
  // request_drain() — which cannot touch the condition variable — still
  // wakes us promptly.
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!shutdown_requested_ && !drain_requested_.load(std::memory_order_relaxed))
    stop_cv_.wait_for(lock, std::chrono::milliseconds(100));
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // Someone else is (or finished) stopping; wait for them.
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  state_.store(static_cast<int>(ServerState::kDraining), std::memory_order_release);
  state_gauge().set(static_cast<double>(static_cast<int>(ServerState::kDraining)));
  obs::log::info("server.drain", {{"conns", active_connections_gauge().value()},
                                  {"queue_depth", static_cast<std::uint64_t>(
                                                      queue_depth_.load(std::memory_order_relaxed))}});
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    shutdown_requested_ = true;
  }
  stop_cv_.notify_all();
  // Stop taking on new work first; connections notice stopping_ within
  // ~200ms (recv timeout) and close themselves once their current request
  // is answered.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain window: give in-flight requests drain_timeout_ms to finish.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  bool drained = false;
  for (;;) {
    reap_connections(false);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      drained = conns_.empty();
    }
    if (drained || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!drained) {
    // Budget blown: cancel the stragglers cooperatively.  Their next
    // deadline checkpoint throws kCancelled, the response comes back as a
    // typed error, and the connection unwinds normally — no thread is
    // killed.
    obs::log::warn("server.drain.timeout",
                   {{"drain_timeout_ms", options_.drain_timeout_ms}});
    cancel_inflight();
  }
  reap_connections(true);
  pool_.wait_idle();
  // The telemetry endpoint outlives the drain so /healthz reports
  // "draining" while it happens.
  if (http_ != nullptr) http_->stop();
  if (!address_.empty() && address_.compare(0, 5, "unix:") == 0)
    ::unlink(options_.listen.c_str());
  state_.store(static_cast<int>(ServerState::kStopped), std::memory_order_release);
  state_gauge().set(static_cast<double>(static_cast<int>(ServerState::kStopped)));
  obs::log::info("server.stop", {{"requests", requests_.load(std::memory_order_relaxed)},
                                 {"shed", sheds_.load(std::memory_order_relaxed)},
                                 {"drained", drained}});
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

void Server::register_inflight(const robust::Deadline* deadline) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.push_back(deadline);
}

void Server::unregister_inflight(const robust::Deadline* deadline) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  std::erase(inflight_, deadline);
}

void Server::cancel_inflight() {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  for (const robust::Deadline* deadline : inflight_) deadline->cancel();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    reap_connections(false);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound sends so a client that stops reading cannot hang stop().
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    // Short recv timeout: connection threads wake every 200ms to notice
    // stop()/drain and enforce the idle timeout.
    timeval rtv{};
    rtv.tv_usec = 200000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rtv, sizeof(rtv));
    if (options_.max_connections != 0) {
      std::size_t live = 0;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        live = conns_.size();
      }
      if (live >= options_.max_connections) {
        // Typed rejection, not a silent RST: retry clients back off and
        // come back instead of treating this as a dead server.
        conn_rejected_counter().add();
        note_shed();
        std::string line = overloaded_response(
            0, retry_after_hint_ms(),
            "connection limit reached (" + std::to_string(options_.max_connections) + ")");
        line.push_back('\n');
        (void)send_all(fd, line);
        ::close(fd);
        obs::log::warn("server.conn.rejected",
                       {{"live", static_cast<std::uint64_t>(live)},
                        {"max", static_cast<std::uint64_t>(options_.max_connections)}});
        continue;
      }
    }
    connection_counter().add();
    active_connections_gauge().add(1.0);
    obs::log::info("server.connect", {{"fd", static_cast<std::uint64_t>(fd)}});
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::make_unique<Connection>());
    Connection* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn, fd] {
      serve_connection(fd);
      conn->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_connections(bool all) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  if (all) {
    // Read-side shutdown only: blocked recv()s return 0, but an in-flight
    // response (e.g. the shutdown ack) still drains before the close.
    for (const auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  std::erase_if(conns_, [all](const std::unique_ptr<Connection>& conn) {
    if (!all && !conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
    return true;
  });
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  // Oversized-line recovery: once a request blows kMaxRequestLine we
  // answer with `request-too-large` and throw bytes away until the next
  // newline, so one runaway line does not cost the client its connection.
  bool discarding = false;
  auto last_activity = std::chrono::steady_clock::now();
  while (open) {
    // Chaos site: a reader that stalls mid-stream (network hiccup, stuck
    // client) — the idle timeout below is what keeps this bounded.
    robust::fault::maybe_sleep("server.conn.read");
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // recv timeout tick: notice stop()/drain promptly, enforce idle cap.
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (options_.idle_timeout_ms != 0 &&
          std::chrono::steady_clock::now() - last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        idle_close_counter().add();
        obs::log::info("server.conn.idle_closed",
                       {{"fd", static_cast<std::uint64_t>(fd)},
                        {"idle_timeout_ms", options_.idle_timeout_ms}});
        break;
      }
      continue;
    }
    if (n <= 0) break;
    last_activity = std::chrono::steady_clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t nl = buffer.find('\n');
      if (nl == std::string::npos) {
        buffer.clear();
        continue;
      }
      buffer.erase(0, nl + 1);
      discarding = false;
    }
    if (buffer.size() > kMaxRequestLine && buffer.find('\n') == std::string::npos) {
      request_too_large_counter().add();
      std::string response =
          error_response(0, "request-too-large",
                         "request line exceeds " + std::to_string(kMaxRequestLine) + " bytes");
      response.push_back('\n');
      if (!send_all(fd, response)) break;
      buffer.clear();
      discarding = true;
      continue;
    }
    std::size_t pos = 0;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.empty()) continue;
      std::string response;
      if (line.size() > kMaxRequestLine) {
        request_too_large_counter().add();
        response = error_response(
            0, "request-too-large",
            "request line exceeds " + std::to_string(kMaxRequestLine) + " bytes");
      } else {
        response = handle_line(line);
      }
      response.push_back('\n');
      // Chaos sites: a connection that dies before the response leaves,
      // and a write torn halfway through.  Clients must treat both as a
      // transport failure and resend — results stay byte-identical
      // because the request itself is idempotent.
      if (robust::fault::maybe_fire("server.conn.disconnect")) {
        open = false;
        break;
      }
      if (robust::fault::maybe_fire("server.conn.write")) {
        (void)send_all(fd, std::string_view(response).substr(0, response.size() / 2));
        open = false;
        break;
      }
      if (!send_all(fd, response)) {
        open = false;
        break;
      }
      last_activity = std::chrono::steady_clock::now();
      // A shutdown request was acknowledged above; drop the connection so
      // stop() (triggered via wait()) does not have to race our recv.
      if (stopping_.load(std::memory_order_relaxed)) {
        open = false;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (shutdown_requested_) open = false;
      }
      if (!open) break;
    }
  }
  disconnect_counter().add();
  active_connections_gauge().add(-1.0);
  obs::log::info("server.disconnect", {{"fd", static_cast<std::uint64_t>(fd)}});
}

std::string Server::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  request_counter().add();
  obs::ScopedTimer timer(request_histogram());
  ParsedRequest parsed = parse_request(line);
  if (!parsed.ok) {
    request_error_counter().add();
    return error_response(0, "syntax", parsed.error);
  }
  const Request& request = parsed.request;
  std::optional<obs::ScopedTimer> cmd_timer;
  if (obs::Histogram* h = command_histogram(request.cmd)) cmd_timer.emplace(*h);
  // Adopt the client's trace: the root phase span covers dispatch to
  // response render, on every exit path.  A `trace` fetch itself is never
  // taped — reading a trace must not grow it.
  RequestTraceStore* const sink =
      !request.trace.empty() && request.cmd != "trace" ? &traces_ : nullptr;
  const TracePhase root_phase(sink, &request.trace, "server.request",
                              request.net.empty() ? request.cmd
                                                  : request.cmd + " " + request.net);
  obs::Span span("server.request", "server", request.cmd);
  auto flight = obs::flight::recorder().begin(
      request.net.empty() ? std::string_view(request.cmd) : std::string_view(request.net),
      "serve");
  try {
    std::string response = dispatch(request);
    obs::flight::recorder().end(flight, obs::flight::Outcome::kOk);
    return response;
  } catch (const robust::Error& e) {
    request_error_counter().add();
    obs::flight::recorder().end(flight,
                                e.code() == robust::Code::kTimeout
                                    ? obs::flight::Outcome::kTimeout
                                    : obs::flight::Outcome::kFailed,
                                e.code());
    if (e.code() == robust::Code::kOverloaded) {
      // Load shedding is expected under pressure: answer with the typed
      // backoff hint and skip the failure dump — writing a flight file per
      // shed would turn overload into an I/O storm.
      return overloaded_response(request.id, retry_after_hint_ms(), e.what());
    }
    obs::log::warn("server.request_failed",
                   {{"cmd", std::string_view(request.cmd)},
                    {"code", robust::code_name(e.code())},
                    {"error", std::string_view(e.what())}});
    if (!options_.flight_out.empty()) obs::flight::recorder().write(options_.flight_out);
    return error_response(request.id, robust::code_name(e.code()), e.what());
  } catch (const std::exception& e) {
    request_error_counter().add();
    obs::flight::recorder().end(flight, obs::flight::Outcome::kFailed,
                                robust::Code::kTaskFailure);
    obs::log::warn("server.request_failed", {{"cmd", std::string_view(request.cmd)},
                                             {"code", "task-failure"},
                                             {"error", std::string_view(e.what())}});
    if (!options_.flight_out.empty()) obs::flight::recorder().write(options_.flight_out);
    return error_response(request.id, "task-failure", e.what());
  }
}

std::string Server::dispatch(const Request& request) {
  if (request.cmd == "ping") return cmd_ping(request);
  if (request.cmd == "load") return cmd_load(request);
  if (request.cmd == "report") return cmd_report(request, /*bounds_only=*/false);
  if (request.cmd == "bounds") return cmd_report(request, /*bounds_only=*/true);
  if (request.cmd == "stats") return cmd_stats(request);
  if (request.cmd == "evict") return cmd_evict(request);
  if (request.cmd == "trace") return cmd_trace(request);
  if (request.cmd == "shutdown") return cmd_shutdown(request);
  throw robust::Error(robust::Code::kUnsupported, "unknown command '" + request.cmd + "'");
}

std::size_t Server::effective_queue_cap() const {
  if (options_.max_queue_depth != 0) return options_.max_queue_depth;
  return pool_.thread_count() * 4;
}

std::uint64_t Server::retry_after_hint_ms() const {
  // Scale the hint with how far past capacity we are: an empty queue says
  // "come right back" (25ms), a deeply backed-up one pushes clients out to
  // 2s so the herd thins instead of re-stampeding.
  const std::size_t depth = queue_depth_.load(std::memory_order_relaxed);
  const std::size_t threads = std::max<std::size_t>(pool_.thread_count(), 1);
  const std::uint64_t hint = 25 * (1 + depth / threads);
  return std::min<std::uint64_t>(std::max<std::uint64_t>(hint, 25), 2000);
}

void Server::note_shed() {
  sheds_.fetch_add(1, std::memory_order_relaxed);
  shed_counter().add();
  last_shed_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

std::string Server::run_on_pool(std::function<std::string()> fn) {
  // Admission control: the depth counts pool-bound requests queued or
  // running.  Shedding here — before any submit — keeps the rejection
  // cost near zero, which is exactly what an overloaded server needs.
  const std::size_t cap = effective_queue_cap();
  const std::size_t depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  queue_depth_gauge().set(static_cast<double>(depth));
  struct DepthGuard {
    Server* server;
    ~DepthGuard() {
      const std::size_t now =
          server->queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1;
      queue_depth_gauge().set(static_cast<double>(now));
    }
  } guard{this};
  if (cap != 0 && depth > cap) {
    note_shed();
    throw robust::Error(robust::Code::kOverloaded,
                        "server overloaded: dispatch queue full (depth " +
                            std::to_string(depth) + ", cap " + std::to_string(cap) + ")");
  }
  auto task = std::make_shared<std::packaged_task<std::string()>>(std::move(fn));
  std::future<std::string> future = task->get_future();
  pool_.submit([task] { (*task)(); });
  return future.get();  // rethrows what the task threw
}

std::string Server::cmd_ping(const Request& request) {
  // uptime/version/pid ride along additively: the tolerant scanner on old
  // clients skips the unknown keys.
  std::string out = "{\"id\":" + std::to_string(request.id) + ",\"ok\":true,\"uptime_s\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", uptime_seconds());
  out += buf;
  out += ",\"version\":";
  append_json_string(out, kVersion);
  out += ",\"pid\":" + std::to_string(static_cast<long>(::getpid()));
  out += ",\"state\":";
  append_json_string(out, server_state_name(current_state()));
  out.push_back('}');
  return out;
}

std::string Server::cmd_trace(const Request& request) {
  if (request.trace.empty())
    throw robust::Error(robust::Code::kUnsupported, "trace needs \"trace\"");
  // An unknown (or already evicted) id is an empty slice, not an error:
  // the client still writes its own half of the timeline.
  const std::vector<TraceSpan> spans = traces_.fetch(request.trace);
  std::string out = "{\"id\":" + std::to_string(request.id) + ",\"ok\":true,\"trace\":";
  append_json_string(out, request.trace);
  out.push_back(',');
  append_trace_spans_json(out, spans);
  out.push_back('}');
  return out;
}

std::string Server::load_design(const std::string& path, bool lenient) {
  // Zero-copy ingestion: hash and parse straight out of the mapping; only
  // the parsed SpefFile (and the handle) survive the load.
  MappedFile mapped;
  if (!mapped.open(path))
    throw robust::Error(robust::Code::kFileOpen, "cannot open '" + path + "'", {path}, "spef");
  const std::string_view bytes = mapped.view();
  const std::string handle = design_handle(bytes);
  {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    const auto it = designs_.find(handle);
    if (it != designs_.end()) {
      last_design_ = handle;  // cheap rebind: same content already resident
      return handle;
    }
  }
  engine::ParseOptions parse_options;
  parse_options.jobs = options_.parse_jobs;
  parse_options.spef.lenient = lenient;
  parse_options.spef.path = path;
  auto design = std::make_shared<Design>();
  design->handle = handle;
  design->path = path;
  engine::ParsedSpef parsed = engine::parse_spef_parallel(bytes, parse_options);
  design->file = std::move(parsed.file);
  obs::log::info("server.load.parse",
                 {{"path", std::string_view(path)},
                  {"bytes", static_cast<std::uint64_t>(parsed.stats.bytes)},
                  {"sections", static_cast<std::uint64_t>(parsed.stats.sections)},
                  {"threads", static_cast<std::uint64_t>(parsed.stats.threads)},
                  {"wall_s", parsed.stats.total_seconds}});
  design->net_index.reserve(design->file.nets.size());
  for (std::size_t i = 0; i < design->file.nets.size(); ++i)
    design->net_index.emplace(design->file.nets[i].name, i);
  obs::log::info("server.load", {{"design", std::string_view(design->file.design)},
                                 {"handle", std::string_view(handle)},
                                 {"path", std::string_view(path)},
                                 {"nets", static_cast<std::uint64_t>(design->file.nets.size())}});
  {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    designs_.emplace(handle, std::move(design));
    last_design_ = handle;
  }
  update_gauges();
  return handle;
}

std::shared_ptr<const Server::Design> Server::find_design(const std::string& ref) {
  std::lock_guard<std::mutex> lock(designs_mutex_);
  const std::string& key = ref.empty() ? last_design_ : ref;
  const auto it = designs_.find(key);
  if (it != designs_.end()) return it->second;
  // Fall back to the SPEF *DESIGN name (first match).
  for (const auto& [handle, design] : designs_)
    if (design->file.design == ref) return design;
  return nullptr;
}

std::string Server::cmd_load(const Request& request) {
  if (request.path.empty())
    throw robust::Error(robust::Code::kUnsupported, "load needs \"path\"");
  const bool lenient = request.lenient || options_.lenient;
  return run_on_pool([this, &request, lenient]() -> std::string {
    const std::string handle = load_design(request.path, lenient);
    const std::shared_ptr<const Design> design = find_design(handle);
    // A racing evict can win between the insert above and this lookup; the
    // load itself succeeded, but the design is gone — say so, typed.
    if (design == nullptr)
      throw robust::Error(robust::Code::kUnsupported,
                          "design '" + handle + "' evicted during load");
    std::size_t nodes = 0;
    for (const auto& net : design->file.nets) nodes += net.tree.size();
    std::string out = "{\"id\":" + std::to_string(request.id) + ",\"ok\":true,\"design\":";
    append_json_string(out, handle);
    out += ",\"name\":";
    append_json_string(out, design->file.design);
    out += ",\"nets\":" + std::to_string(design->file.nets.size()) +
           ",\"nodes\":" + std::to_string(nodes);
    if (!design->file.diagnostics.empty())
      out += ",\"diagnostics\":" + std::to_string(design->file.diagnostics.size());
    out.push_back('}');
    return out;
  });
}

std::string Server::cmd_report(const Request& request, bool bounds_only) {
  if (request.net.empty())
    throw robust::Error(robust::Code::kUnsupported, "report needs \"net\"");
  const std::shared_ptr<const Design> design = find_design(request.design);
  if (design == nullptr)
    throw robust::Error(robust::Code::kUnsupported,
                        request.design.empty() ? "no design loaded"
                                               : "unknown design '" + request.design + "'");
  const auto net_it = design->net_index.find(request.net);
  if (net_it == design->net_index.end())
    throw robust::Error(robust::Code::kUnsupported,
                        "unknown net '" + request.net + "' in design " + design->handle);
  const SpefNet& net = design->file.nets[net_it->second];

  core::ReportOptions report = options_.report;
  if (request.has_with_exact) report.with_exact = request.with_exact;
  if (request.leaves_only) report.leaves_only = true;
  if (bounds_only) {
    report.with_exact = false;
    report.leaves_only = true;
  }
  if (request.exact_limit != 0) report.exact_node_limit = request.exact_limit;
  if (request.fraction > 0.0) report.fraction = request.fraction;
  const std::uint64_t timeout_ms =
      request.timeout_ms != 0 ? request.timeout_ms : options_.request_timeout_ms;

  // The gap between submit and the task body running is pool queue wait —
  // under load, the span that explains "the server was busy".
  RequestTraceStore* const sink = !request.trace.empty() ? &traces_ : nullptr;
  const std::uint64_t submit_ns = sink != nullptr ? obs::tracer().now_ns() : 0;

  return run_on_pool([this, design, &net, &request, report, timeout_ms, bounds_only, sink,
                      submit_ns]() -> std::string {
    if (sink != nullptr) {
      const std::uint64_t now_ns = obs::tracer().now_ns();
      if (obs::tracer().enabled())
        obs::tracer().record("server.queue_wait", "server", submit_ns, now_ns - submit_ns);
      sink->record(request.trace, TraceSpan{"server.queue_wait", {}, submit_ns,
                                            now_ns - submit_ns});
    }
    const robust::Deadline deadline = robust::Deadline::after_ms(timeout_ms);
    core::ReportOptions effective = report;
    // Always pass the deadline, armed or not: an unarmed Deadline is still
    // cancellable, which is how a drain past its budget cuts this request
    // loose at the next checkpoint.
    effective.deadline = &deadline;
    struct InflightGuard {
      Server* server;
      const robust::Deadline* deadline;
      InflightGuard(Server* s, const robust::Deadline* d) : server(s), deadline(d) {
        server->register_inflight(deadline);
      }
      ~InflightGuard() { server->unregister_inflight(deadline); }
    } inflight_guard(this, &deadline);
    robust::fault::maybe_sleep("server.report");
    robust::fault::maybe_throw("server.report");
    deadline.check("server.report");

    const engine::NetKey key = engine::NetKey::of(net.tree, effective);
    engine::CacheSource source = engine::CacheSource::kMiss;
    std::optional<std::vector<core::NodeReport>> rows;
    {
      const TracePhase phase(sink, &request.trace, "server.cache.lookup", request.net);
      rows = cache_.lookup(key, net.tree, &source);
    }
    if (!rows.has_value()) {
      const engine::NetKey content_key = engine::NetKey::content_of(net.tree);
      std::shared_ptr<const analysis::TreeContext> context;
      {
        const TracePhase phase(sink, &request.trace, "server.context.build", request.net);
        context = cache_.lookup_context(content_key);
        if (context == nullptr) {
          // The cached context owns a copy of the tree: evicting the design
          // later cannot dangle it.
          auto owned = std::make_shared<const RCTree>(net.tree);
          context = cache_.insert_context(
              content_key, std::make_shared<const analysis::TreeContext>(std::move(owned)));
        }
      }
      {
        const TracePhase phase(sink, &request.trace, "server.report.build", request.net);
        rows = core::build_report(*context, effective);
        // The context may have been donated by a content-identical net with
        // different node names; bind the rows to the requested net.
        engine::rebind_report_names(*rows, net.tree);
        cache_.insert(key, *rows);
      }
    }

    const TracePhase render_phase(sink, &request.trace, "server.render", request.net);
    std::string out = "{\"id\":" + std::to_string(request.id) + ",\"ok\":true,\"design\":";
    append_json_string(out, design->handle);
    out += ",\"net\":";
    append_json_string(out, request.net);
    out += ",\"source\":\"";
    out += source_name(source);
    out += "\",\"rows\":[";
    for (std::size_t i = 0; i < rows->size(); ++i) {
      if (i > 0) out.push_back(',');
      append_row_json(out, (*rows)[i], bounds_only);
    }
    out += "]}";
    return out;
  });
}

std::string Server::cmd_stats(const Request& request) {
  std::size_t n_designs = 0;
  std::size_t n_nets = 0;
  {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    n_designs = designs_.size();
    for (const auto& [handle, design] : designs_) n_nets += design->file.nets.size();
  }
  std::string out = "{\"id\":" + std::to_string(request.id) + ",\"ok\":true";
  out += ",\"designs\":" + std::to_string(n_designs);
  out += ",\"nets\":" + std::to_string(n_nets);
  out += ",\"requests\":" + std::to_string(requests_.load(std::memory_order_relaxed));
  out += ",\"threads\":" + std::to_string(pool_.thread_count());
  out += ",\"state\":";
  append_json_string(out, server_state_name(current_state()));
  out += ",\"shed\":" + std::to_string(sheds_.load(std::memory_order_relaxed));
  out += ",\"queue_depth\":" + std::to_string(queue_depth_.load(std::memory_order_relaxed));
  out += ",\"queue_cap\":" + std::to_string(effective_queue_cap());
  out += ",\"cache\":{\"entries\":" + std::to_string(cache_.size());
  out += ",\"contexts\":" + std::to_string(cache_.context_count());
  out += ",\"hits\":" + std::to_string(cache_.hits());
  out += ",\"misses\":" + std::to_string(cache_.misses());
  out += ",\"store_hits\":" + std::to_string(cache_.backend_hits());
  out += ",\"evictions\":" + std::to_string(cache_.evictions()) + "}";
  if (store_ != nullptr) {
    out += ",\"store\":{\"dir\":";
    append_json_string(out, store_->dir());
    out += ",\"entries\":" + std::to_string(store_->entry_count());
    out += ",\"bytes\":" + std::to_string(store_->total_bytes());
    out += ",\"max_bytes\":" + std::to_string(store_->max_bytes()) + "}";
  }
  out.push_back('}');
  return out;
}

std::string Server::cmd_evict(const Request& request) {
  std::size_t designs_evicted = 0;
  std::size_t entries_dropped = 0;
  std::size_t contexts_dropped = 0;
  if (!request.design.empty()) {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    const auto it = designs_.find(request.design);
    if (it == designs_.end())
      throw robust::Error(robust::Code::kUnsupported,
                          "unknown design '" + request.design + "'");
    if (last_design_ == it->first) last_design_.clear();
    designs_.erase(it);
    designs_evicted = 1;
    // Cached rows/contexts are content-addressed and name-independent;
    // they stay until the LRU (or a full evict) displaces them.
  } else {
    {
      std::lock_guard<std::mutex> lock(designs_mutex_);
      designs_evicted = designs_.size();
      designs_.clear();
      last_design_.clear();
    }
    const auto [entries, contexts] = cache_.clear();
    entries_dropped = entries;
    contexts_dropped = contexts;
  }
  obs::log::info("server.evict",
                 {{"designs", static_cast<std::uint64_t>(designs_evicted)},
                  {"entries", static_cast<std::uint64_t>(entries_dropped)},
                  {"contexts", static_cast<std::uint64_t>(contexts_dropped)}});
  update_gauges();
  return "{\"id\":" + std::to_string(request.id) +
         ",\"ok\":true,\"designs_evicted\":" + std::to_string(designs_evicted) +
         ",\"entries_dropped\":" + std::to_string(entries_dropped) +
         ",\"contexts_dropped\":" + std::to_string(contexts_dropped) + "}";
}

void Server::update_gauges() {
  static obs::Gauge& designs_gauge = obs::registry().gauge("server.designs");
  static obs::Gauge& nets_gauge = obs::registry().gauge("server.nets.loaded");
  static obs::Gauge& entries_gauge = obs::registry().gauge("server.cache.entries");
  static obs::Gauge& contexts_gauge = obs::registry().gauge("server.cache.contexts");
  static obs::Gauge& cache_hit_gauge = obs::registry().gauge("server.cache.hit_rate");
  static obs::Gauge& store_hit_gauge = obs::registry().gauge("server.store.hit_rate");
  std::size_t n_designs = 0;
  std::size_t n_nets = 0;
  {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    n_designs = designs_.size();
    for (const auto& [handle, design] : designs_) n_nets += design->file.nets.size();
  }
  designs_gauge.set(static_cast<double>(n_designs));
  nets_gauge.set(static_cast<double>(n_nets));
  entries_gauge.set(static_cast<double>(cache_.size()));
  contexts_gauge.set(static_cast<double>(cache_.context_count()));
  // hits = memory, backend_hits = store, misses = recomputed; the three are
  // disjoint, so hit rates are straightforward fractions.
  const double memory_hits = static_cast<double>(cache_.hits());
  const double store_hits = static_cast<double>(cache_.backend_hits());
  const double misses = static_cast<double>(cache_.misses());
  const double lookups = memory_hits + store_hits + misses;
  cache_hit_gauge.set(lookups > 0.0 ? (memory_hits + store_hits) / lookups : 0.0);
  store_hit_gauge.set(store_hits + misses > 0.0 ? store_hits / (store_hits + misses) : 0.0);
  state_gauge().set(static_cast<double>(static_cast<int>(current_state())));
  queue_depth_gauge().set(static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
}

HttpResponse Server::route_http(std::string_view path) {
  if (path == "/metrics") {
    update_gauges();  // scrapes see current designs/cache/store levels
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::registry().to_prometheus()};
  }
  if (path == "/varz") {
    update_gauges();
    return HttpResponse{200, "application/json", obs::registry().to_json() + "\n"};
  }
  if (path == "/healthz") {
    const ServerState state = current_state();
    const bool healthy = state == ServerState::kServing || state == ServerState::kDegraded;
    std::string body = "{\"status\":\"";
    body += healthy ? "ok" : "unavailable";
    body += "\",\"state\":";
    append_json_string(body, server_state_name(state));
    body += ",\"uptime_s\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", uptime_seconds());
    body += buf;
    body += ",\"version\":";
    append_json_string(body, kVersion);
    body += ",\"pid\":" + std::to_string(static_cast<long>(::getpid()));
    body += ",\"requests\":" + std::to_string(requests_.load(std::memory_order_relaxed));
    body += ",\"shed\":" + std::to_string(sheds_.load(std::memory_order_relaxed));
    body += ",\"address\":";
    append_json_string(body, address_);
    body += "}\n";
    // Draining/stopped answer 503 so load balancers and scripts see the
    // instance leaving rotation before its socket disappears.
    return HttpResponse{healthy ? 200 : 503, "application/json", std::move(body)};
  }
  if (path == "/flight")
    return HttpResponse{200, "application/json", obs::flight::recorder().to_json() + "\n"};
  return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
}

std::string Server::cmd_shutdown(const Request& request) {
  obs::log::info("server.shutdown", {{"id", request.id}});
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    shutdown_requested_ = true;
  }
  stop_cv_.notify_all();
  return "{\"id\":" + std::to_string(request.id) + ",\"ok\":true,\"shutdown\":true}";
}

}  // namespace rct::server
