#pragma once
// server::Server — the long-running timing daemon behind `rct serve`.
//
// One process holds parsed designs and their warm analysis::TreeContexts in
// memory and answers newline-delimited JSON requests (see protocol.hpp)
// from many concurrent clients, so interactive queries against a large
// extracted design cost microseconds instead of a full parse + analysis
// per invocation.
//
// Threading model:
//   - one accept thread (poll with a short timeout so stop() is prompt),
//   - one thread per connection reading lines and writing responses
//     (finished connections are reaped by the accept loop, all joined at
//     stop()),
//   - report/load work is dispatched onto the shared work-stealing
//     engine::ThreadPool, so N chatty clients contend for `jobs` workers
//     instead of spawning unbounded computation threads.
//
// State and consistency:
//   - designs_: content-handle → parsed SPEF.  The handle is a 12-hex FNV
//     of the file bytes, so re-loading an unchanged file is a cheap rebind
//     and two servers pointed at one store agree on identity.
//   - cache_: the engine's sharded NetCache (rows + contexts, optional LRU
//     cap), backed by an optional server::DiskStore.  Contexts cached here
//     own copies of their trees, so evicting a design never dangles a
//     cached context.
//   - The disk store is multi-writer safe (atomic renames); entries are
//     immutable once written, so cross-server sharing needs no locking.
//
// Every request runs under an obs::Span ("server.request"), lands in the
// `server.request.seconds` histogram (plus a per-command split,
// `server.request.<cmd>.seconds`), and is recorded in the flight recorder
// (phase "serve"); failures optionally dump the recorder to `flight_out`.
// Connect/disconnect/evict/shutdown emit structured log events.
//
// Telemetry surface: `http` in ServeOptions starts an embedded HTTP
// listener (see http.hpp) serving /metrics (Prometheus exposition),
// /healthz, /varz (JSON metrics snapshot) and /flight (flight-recorder
// dump).  Requests carrying a client trace id get their server-side phase
// spans taped into a bounded RequestTraceStore, fetchable with the `trace`
// command and stitched client-side into one Perfetto timeline (see
// request_trace.hpp).
//
// Listening: `listen` is a unix-domain socket path, or — when it is all
// digits — a TCP port on 127.0.0.1 (0 picks an ephemeral port, reported
// by address()/port() for tests).
//
// Overload resilience (see DESIGN.md "Operations"):
//   - Admission control: pool-bound commands (report/bounds/load) pass a
//     bounded dispatch queue; past the cap the request is shed immediately
//     with a typed `overloaded` response carrying a `retry_after_ms` hint
//     scaled to the current queue depth.  Connections past
//     --max-connections are answered with the same typed line and closed.
//     Control commands (ping/stats/evict/trace/shutdown) always answer.
//   - Lifecycle: starting → serving → degraded → draining → stopped.
//     `degraded` is computed, not stored: serving plus a nearly-full queue
//     or a recent shed.  The state shows up in `ping`, `stats`, /healthz
//     (503 while draining) and the `server.state` gauge.
//   - Graceful drain: request_drain() is async-signal-safe (one atomic
//     store); wait() polls it, and stop() then stops accepting, lets
//     in-flight work finish until --drain-timeout-ms, cancels whatever
//     remains via cooperative robust::Deadline::cancel(), and only then
//     joins.  Idle connections notice within ~200ms via a recv timeout.
//   - Socket hygiene: request lines are capped (kMaxRequestLine; oversized
//     input gets a typed `request-too-large` response and the connection
//     stays usable), reads carry an idle timeout, writes a send timeout.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "rctree/spef.hpp"
#include "robust/deadline.hpp"
#include "server/http.hpp"
#include "server/protocol.hpp"
#include "server/request_trace.hpp"
#include "server/store.hpp"

namespace rct::server {

/// Configuration for one Server instance (CLI: `rct serve`).
struct ServeOptions {
  /// Unix socket path, or an all-digits TCP port on 127.0.0.1.
  std::string listen = "rct.sock";
  /// On-disk store directory; empty = memory-only cache.
  std::string store_dir;
  /// Worker threads for report/load work; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Parser threads for `load` / --preload SPEF ingestion (CLI:
  /// --parse-jobs); 0 = hardware concurrency.
  std::size_t parse_jobs = 0;
  /// LRU cap for the in-memory cache (0 = unbounded).
  std::size_t cache_max_entries = 0;
  /// Default per-request deadline; requests may override; 0 = none.
  std::uint64_t request_timeout_ms = 0;
  /// Default report options (with_exact / fraction / leaves_only /
  /// exact_node_limit); requests override per-field.
  core::ReportOptions report;
  /// Parse preloaded/loaded SPEF leniently by default.
  bool lenient = false;
  /// Flight-recorder dump target on request failure ("" = no dump,
  /// "-" = stderr).
  std::string flight_out;
  /// Telemetry HTTP listener spec: unix socket path, or an all-digits TCP
  /// port on 127.0.0.1 (0 = ephemeral); "" = no HTTP endpoint.
  std::string http;
  /// Admission control: concurrent client connections (0 = unbounded) and
  /// pool-bound requests queued or running (0 = 4× worker threads).
  std::size_t max_connections = 0;
  std::size_t max_queue_depth = 0;
  /// Close connections silent for this long (0 = never).
  std::uint64_t idle_timeout_ms = 30000;
  /// Graceful-drain budget: in-flight requests get this long to finish
  /// before they are cooperatively cancelled.
  std::uint64_t drain_timeout_ms = 5000;
  /// DiskStore capacity cap in bytes (0 = unbounded); see store.hpp GC.
  std::uint64_t store_max_bytes = 0;
};

/// Server lifecycle state (the `server.state` gauge exports the numeric
/// value in declaration order).
enum class ServerState { kStarting = 0, kServing, kDegraded, kDraining, kStopped };

/// Stable lowercase name ("serving", "draining"...) for ping/healthz/stats.
[[nodiscard]] std::string_view server_state_name(ServerState state);

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread.  False (with error())
  /// when the address cannot be bound.
  [[nodiscard]] bool start();

  /// Human-readable bound address: "unix:<path>" or "tcp:127.0.0.1:<port>".
  [[nodiscard]] const std::string& address() const { return address_; }
  /// Bound TCP port (after start(); 0 for unix sockets).
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// The telemetry endpoint's bound address ("" when `http` is unset) and
  /// TCP port (0 for unix sockets / no endpoint); valid after start().
  [[nodiscard]] std::string http_address() const {
    return http_ != nullptr ? http_->address() : std::string();
  }
  [[nodiscard]] int http_port() const { return http_ != nullptr ? http_->port() : 0; }

  /// Seconds since this Server was constructed (the `ping` uptime_s field).
  [[nodiscard]] double uptime_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_)
        .count();
  }

  /// Blocks until a client issues `shutdown`, stop() is called, or
  /// request_drain() fires (polled, so a signal handler can trigger it).
  void wait();

  /// Stops accepting, drains in-flight work (up to drain_timeout_ms, then
  /// cooperative cancellation), closes every connection, joins all
  /// threads.  Idempotent.
  void stop();

  /// Marks the server for graceful drain.  Async-signal-safe: one relaxed
  /// atomic store, nothing else — the SIGTERM/SIGINT handlers in `rct
  /// serve` call exactly this.  wait() notices within ~100ms.
  void request_drain() { drain_requested_.store(true, std::memory_order_relaxed); }

  /// Current lifecycle state; `degraded` is computed from queue pressure
  /// and recent sheds, the rest track start()/stop().
  [[nodiscard]] ServerState current_state() const;

  /// Pool-bound requests queued or running right now / shed so far.
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_shed() const {
    return sheds_.load(std::memory_order_relaxed);
  }

  /// Longest request line the NDJSON path accepts (1 MiB); longer input
  /// draws a typed `request-too-large` response and is discarded without
  /// closing the connection.
  static constexpr std::size_t kMaxRequestLine = 1 << 20;

  /// Parses and registers a design (the `--preload` path and the worker
  /// behind the `load` command).  Returns its content handle; throws
  /// robust::Error on parse failure.
  std::string load_design(const std::string& path, bool lenient);

  /// Handles one protocol line and returns the response line (no trailing
  /// newline).  Public so tests and in-process benchmarks can drive the
  /// full command surface without sockets; connection threads call exactly
  /// this.  Thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Requests served so far (all commands, failures included).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One parsed design held in memory.
  struct Design {
    std::string handle;  ///< 12-hex FNV-1a of the file bytes
    std::string path;
    SpefFile file;
    std::unordered_map<std::string, std::size_t> net_index;  ///< name → nets[i]
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  [[nodiscard]] std::string dispatch(const Request& request);
  [[nodiscard]] std::string cmd_ping(const Request& request);
  [[nodiscard]] std::string cmd_load(const Request& request);
  [[nodiscard]] std::string cmd_report(const Request& request, bool bounds_only);
  [[nodiscard]] std::string cmd_stats(const Request& request);
  [[nodiscard]] std::string cmd_evict(const Request& request);
  [[nodiscard]] std::string cmd_trace(const Request& request);
  [[nodiscard]] std::string cmd_shutdown(const Request& request);

  /// Routes one telemetry GET (/metrics, /healthz, /varz, /flight).
  [[nodiscard]] HttpResponse route_http(std::string_view path);
  /// Refreshes the server-level gauges (designs, nets, cache, store hit
  /// rate) from current state; called after loads/evicts and on scrape.
  void update_gauges();

  /// Resolves a design by handle, SPEF design name, or "" (most recently
  /// loaded).  nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const Design> find_design(const std::string& ref);

  /// Runs `fn` on the pool and waits; exceptions cross back to the caller.
  /// Admission control lives here: past the queue cap the call throws
  /// robust::Error(kOverloaded) without submitting anything.
  [[nodiscard]] std::string run_on_pool(std::function<std::string()> fn);

  /// Queue cap in effect (options or the 4×threads default).
  [[nodiscard]] std::size_t effective_queue_cap() const;
  /// Backoff hint for a shed response, scaled to current queue pressure.
  [[nodiscard]] std::uint64_t retry_after_hint_ms() const;
  /// Records one shed (counter + the degraded-state freshness clock).
  void note_shed();

  /// In-flight deadline registry: pooled request bodies register their
  /// Deadline so a drain past its budget can cancel them cooperatively.
  void register_inflight(const robust::Deadline* deadline);
  void unregister_inflight(const robust::Deadline* deadline);
  void cancel_inflight();

  void accept_loop();
  void serve_connection(int fd);
  /// Joins finished connection threads; `all` also joins live ones
  /// (call with conns_mutex_ held only for the reap-finished case).
  void reap_connections(bool all);

  ServeOptions options_;
  std::string address_;
  int port_ = 0;
  std::string error_;
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  engine::ThreadPool pool_;
  engine::NetCache cache_;
  std::shared_ptr<DiskStore> store_;  ///< nullptr when store_dir is empty
  std::unique_ptr<HttpServer> http_;  ///< nullptr when options_.http is empty
  RequestTraceStore traces_;          ///< server-side span slices per trace id

  std::mutex designs_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Design>> designs_;
  std::string last_design_;  ///< handle of the most recent load

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< guarded by stop_mutex_; stop() ran to completion
  std::atomic<bool> drain_requested_{false};  ///< set by signal handlers

  std::atomic<std::uint64_t> requests_{0};

  // Admission control + lifecycle (see header comment).
  std::atomic<int> state_{static_cast<int>(ServerState::kStarting)};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::int64_t> last_shed_ns_{0};  ///< steady-clock ns of the last shed

  std::mutex inflight_mutex_;
  std::vector<const robust::Deadline*> inflight_;
};

}  // namespace rct::server
