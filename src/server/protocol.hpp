#pragma once
// server::protocol — the newline-delimited JSON request/response wire
// format `rct serve` speaks and `rct client` (and the tests/bench) encode.
//
// Requests are one flat JSON object per line:
//
//   {"id":7,"cmd":"report","design":"a1b2c3d4e5f6","net":"clk_7",
//    "timeout_ms":50,"leaves_only":true}
//
// Commands: ping, load, report, bounds, stats, evict, trace, shutdown.
// Unknown keys are ignored (forward compatibility); unknown commands are
// rejected by the server, not the parser.  Responses are likewise one JSON
// object per line, always carrying "id" (echoed) and "ok"; failures carry
// "error" (message) and "code" (robust::code_name vocabulary).
//
// Trace context: any request may carry "trace" (a 16-hex trace id minted
// by the client) and "span" (the client's span id).  The server records
// its per-phase spans for that request under the trace id; a later
// `trace` command with the same id fetches the slice, and the client
// stitches both halves into one Perfetto timeline (see request_trace.hpp).
//
// The parser accepts exactly what the encoder emits plus ordinary JSON
// freedoms (whitespace, any key order, escaped strings).  It never throws:
// a malformed line comes back as ParsedRequest{ok=false, error}.

#include <cstdint>
#include <string>
#include <string_view>

namespace rct::server {

/// One decoded request.  Absent numeric fields stay 0 ("use the server
/// default"); absent booleans stay false.  `with_exact` is tri-state via
/// `has_with_exact` so a request can force the exact path *off* while the
/// server default keeps it on.
struct Request {
  std::uint64_t id = 0;
  std::string cmd;
  std::string design;  ///< handle or SPEF design name; "" = last loaded
  std::string path;    ///< load: SPEF file to parse
  std::string net;     ///< report/bounds: net name
  bool lenient = false;         ///< load: lenient SPEF parse
  bool leaves_only = false;     ///< report: restrict rows to leaves
  bool with_exact = true;       ///< report: run the eigensolve
  bool has_with_exact = false;  ///< with_exact was present in the request
  std::uint64_t exact_limit = 0;  ///< report: exact_node_limit override (0 = default)
  std::uint64_t timeout_ms = 0;   ///< per-request deadline override (0 = default)
  double fraction = 0.0;          ///< threshold fraction override (0 = default)
  std::string trace;  ///< 16-hex trace id; also the id a `trace` cmd fetches
  std::string span;   ///< client span id within the trace ("" = none)
};

/// Outcome of parsing one request line.
struct ParsedRequest {
  bool ok = false;
  std::string error;  ///< human-readable parse failure, when !ok
  Request request;
};

/// Decodes one line (without the trailing newline).  Never throws.
[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// Encodes `request` as one JSON line (no trailing newline).  Fields at
/// their default values are omitted, so encode(parse(encode(r))) is a
/// fixed point.  This is the one encoder the client subcommand, its batch
/// mode, the tests and bench/perf_serve all share.
[[nodiscard]] std::string encode_request(const Request& request);

/// Appends `s` as a JSON string literal (quoted, escaped).
void append_json_string(std::string& out, std::string_view s);

/// Appends a double in the deterministic %.12e form the batch JSON uses.
void append_json_double(std::string& out, double v);

/// One-line failure response: {"id":N,"ok":false,"error":...,"code":...}.
[[nodiscard]] std::string error_response(std::uint64_t id, std::string_view code,
                                         std::string_view message);

/// Load-shed response: error_response with code "overloaded" plus a
/// `retry_after_ms` backoff hint clients honor before resending.
[[nodiscard]] std::string overloaded_response(std::uint64_t id, std::uint64_t retry_after_ms,
                                              std::string_view message);

/// True when a response line reports success (`"ok":true`).
[[nodiscard]] bool response_ok(std::string_view response_line);

/// The "code" of a failure response ("" on success / uncoded lines).
/// Codes are kebab-case robust::code_name tokens, so no unescaping needed.
[[nodiscard]] std::string response_error_code(std::string_view response_line);

/// The retry_after_ms hint of an `overloaded` response (0 when absent).
[[nodiscard]] std::uint64_t response_retry_after_ms(std::string_view response_line);

}  // namespace rct::server
