#pragma once
// server::HttpServer — the daemon's embedded telemetry endpoint.
//
// A deliberately minimal HTTP/1.0 listener (`rct serve --http PORT|SOCKET`)
// so Prometheus and humans can scrape a live daemon directly instead of
// via textfile exports: GET-only, Connection: close per request, no
// keep-alive, no TLS, no external dependencies.  The daemon registers the
// routes (/metrics, /healthz, /varz, /flight); anything else is 404 and
// any method but GET is 405.
//
// Threading mirrors server::Server: one accept thread polling with a short
// timeout (stop() is prompt), one short-lived thread per connection
// (requests are a handful of bytes and responses are rendered snapshots,
// so connections live for one scrape).  Send/recv both carry socket
// timeouts so a stuck scraper can never wedge stop().
//
// The listen spec mirrors the protocol socket: a unix path, or an
// all-digits TCP port on 127.0.0.1 (0 = ephemeral, reported by port()).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace rct::server {

/// One rendered response for a routed GET.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  /// `handler` maps a request path ("/metrics") to a response; it runs on
  /// connection threads and must be thread-safe.  Paths the handler does
  /// not recognize come back with status 404 and are counted as errors.
  using Handler = std::function<HttpResponse(std::string_view path)>;

  HttpServer(std::string listen_spec, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the accept thread.  False (with error())
  /// when the address cannot be bound.
  [[nodiscard]] bool start();

  /// Stops accepting, joins every connection thread.  Idempotent.
  void stop();

  /// Human-readable bound address: "http://127.0.0.1:<port>" or
  /// "unix:<path>".
  [[nodiscard]] const std::string& address() const { return address_; }
  /// Bound TCP port (after start(); 0 for unix sockets).
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(int fd);
  void reap_connections(bool all);

  const std::string listen_;
  const Handler handler_;
  std::string address_;
  int port_ = 0;
  std::string error_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace rct::server
