#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rct::server {
namespace {

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect(const std::string& target) {
  close();
  error_.clear();
  if (is_all_digits(target)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::strtoul(target.c_str(), nullptr, 10)));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "connect 127.0.0.1:" + target + ": " + std::strerror(errno);
      close();
      return false;
    }
    return true;
  }
  sockaddr_un addr{};
  if (target.size() >= sizeof(addr.sun_path)) {
    error_ = "unix socket path too long: " + target;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, target.c_str(), target.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect " + target + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundtrip(const std::string& request_line, std::string& response_line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  std::string out = request_line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      error_ = "send: " + std::string(std::strerror(errno));
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      response_line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      error_ = n == 0 ? "server closed the connection"
                      : "recv: " + std::string(std::strerror(errno));
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rct::server
