#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "server/protocol.hpp"

namespace rct::server {
namespace {

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect(const std::string& target) {
  close();
  error_.clear();
  target_ = target;
  if (is_all_digits(target)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      error_ = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::strtoul(target.c_str(), nullptr, 10)));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = "connect 127.0.0.1:" + target + ": " + std::strerror(errno);
      close();
      return false;
    }
    return true;
  }
  sockaddr_un addr{};
  if (target.size() >= sizeof(addr.sun_path)) {
    error_ = "unix socket path too long: " + target;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, target.c_str(), target.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect " + target + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundtrip(const std::string& request_line, std::string& response_line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  std::string out = request_line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      error_ = "send: " + std::string(std::strerror(errno));
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      response_line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      error_ = n == 0 ? "server closed the connection"
                      : "recv: " + std::string(std::strerror(errno));
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::backoff_ms(const RetryPolicy& policy, int attempt) {
  std::uint64_t base = policy.base_backoff_ms;
  for (int i = 0; i < attempt && base < policy.max_backoff_ms; ++i) base *= 2;
  base = std::min(base, policy.max_backoff_ms);
  if (base == 0) return 0;
  // xorshift64 — fast, deterministic for a given seed, good enough to
  // decorrelate a fleet of batch clients hammering one recovering server.
  if (jitter_state_ == 0) jitter_state_ = policy.jitter_seed | 1;
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  const std::uint64_t half = base / 2;
  return half + (half > 0 ? jitter_state_ % (half + 1) : 0);
}

bool Client::request(const std::string& request_line, std::string& response_line,
                     const RetryPolicy& policy) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t waited_ms = 0;
  last_retries_ = 0;
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++last_retries_;
    // Reconnect after a broken pipe, a server restart, or a never-connected
    // client: the remembered target makes request() self-healing.
    if (fd_ < 0 && !target_.empty() && !connect(target_)) {
      // Server may still be coming back up; fall through to the backoff.
    }
    if (fd_ >= 0 && roundtrip(request_line, response_line)) {
      if (response_error_code(response_line) != "overloaded") return true;
      // Shed by admission control: honor the server's hint when it is
      // larger than our own schedule, then resend.
      if (attempt + 1 >= attempts) return true;  // exhausted — surface the typed error
      const std::uint64_t hint = response_retry_after_ms(response_line);
      const std::uint64_t wait = std::max(backoff_ms(policy, attempt), hint);
      if (policy.budget_ms != 0 && waited_ms + wait > policy.budget_ms) return true;
      waited_ms += wait;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    // Transport failure (send/recv error, server hung up, connect refused).
    close();
    if (attempt + 1 >= attempts) break;
    const std::uint64_t wait = backoff_ms(policy, attempt);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (policy.budget_ms != 0 &&
        static_cast<std::uint64_t>(elapsed) + wait > policy.budget_ms)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
  if (error_.empty()) error_ = "retries exhausted";
  return false;
}

}  // namespace rct::server
