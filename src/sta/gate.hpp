#pragma once
// Minimal linearized gate model for the STA-lite layer, in the style the
// paper's Section II-A describes ("the nonlinear driver ... is linearized"):
// a gate is an intrinsic delay plus a drive resistance that becomes the root
// resistance of the RC net it drives, and an input capacitance that loads
// the net feeding it.

#include <string>
#include <vector>

namespace rct::sta {

/// Linearized gate: drive side + load side.
struct Gate {
  std::string name;
  double input_capacitance;  ///< farads, loads the upstream net's sink node
  double drive_resistance;   ///< ohms, becomes the driven net's root resistance
  double intrinsic_delay;    ///< seconds, added per stage
  double hold_time = 0.0;    ///< seconds, data must be stable this long after
                             ///< the clock edge (sequential cells only)
};

/// A small builtin cell library (scaled roughly like a 0.5um CMOS family,
/// the technology generation of the paper).  Names: inv_x1, inv_x4, buf_x2,
/// nand2_x1, nor2_x1, dff_x1.
[[nodiscard]] std::vector<Gate> builtin_library();

/// Looks a gate up by name in `library`; throws std::out_of_range if absent.
[[nodiscard]] const Gate& find_gate(const std::vector<Gate>& library, const std::string& name);

}  // namespace rct::sta
