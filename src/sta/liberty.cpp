#include "sta/liberty.hpp"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rct::sta {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kString, kNumber, kPunct, kEnd } kind;
  std::string text;
  std::size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == '"') return lex_string();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.')
      return lex_number();
    ++pos_;
    return {Token::Kind::kPunct, std::string(1, c), line_};
  }

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        const std::size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string_view::npos) {
          pos_ = text_.size();
        } else {
          for (std::size_t i = pos_; i < end; ++i)
            if (text_[i] == '\n') ++line_;
          pos_ = end + 2;
        }
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        const std::size_t end = text_.find('\n', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end;
      } else if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation
      } else {
        break;
      }
    }
  }

  Token lex_string() {
    const std::size_t start_line = line_;
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      out.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    return {Token::Kind::kString, std::move(out), start_line};
  }

  Token lex_ident() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
      ++pos_;
    return {Token::Kind::kIdent, std::string(text_.substr(start, pos_ - start)), line_};
  }

  Token lex_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    return {Token::Kind::kNumber, std::string(text_.substr(start, pos_ - start)), line_};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw LibertyError("liberty line " + std::to_string(line) + ": " + msg);
}

// ---------------------------------------------------------------------------
// Generic group AST: name (args) { attributes and subgroups }
// ---------------------------------------------------------------------------

struct Group {
  std::string name;
  std::vector<std::string> args;
  std::multimap<std::string, std::string> attrs;        // simple attributes
  std::multimap<std::string, std::vector<std::string>>  // complex attributes
      complex;
  std::vector<Group> groups;
  std::size_t line = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) { advance(); }

  Group parse_top() {
    Group g = parse_group_header();
    if (g.name != "library") fail(g.line, "expected top-level 'library' group");
    parse_group_body(g);
    return g;
  }

 private:
  void advance() { cur_ = lex_.next(); }

  void expect_punct(const char* p) {
    if (cur_.kind != Token::Kind::kPunct || cur_.text != p)
      fail(cur_.line, std::string("expected '") + p + "', got '" + cur_.text + "'");
    advance();
  }

  Group parse_group_header() {
    if (cur_.kind != Token::Kind::kIdent) fail(cur_.line, "expected group name");
    Group g;
    g.name = cur_.text;
    g.line = cur_.line;
    advance();
    expect_punct("(");
    while (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")")) {
      if (cur_.kind == Token::Kind::kEnd) fail(cur_.line, "unterminated group arguments");
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ",")) g.args.push_back(cur_.text);
      advance();
    }
    advance();  // ')'
    return g;
  }

  void parse_group_body(Group& g) {
    expect_punct("{");
    while (true) {
      if (cur_.kind == Token::Kind::kEnd) fail(cur_.line, "unterminated group");
      if (cur_.kind == Token::Kind::kPunct && cur_.text == "}") {
        advance();
        if (cur_.kind == Token::Kind::kPunct && cur_.text == ";") advance();
        return;
      }
      if (cur_.kind != Token::Kind::kIdent) fail(cur_.line, "expected statement");
      const std::string name = cur_.text;
      const std::size_t line = cur_.line;
      advance();
      if (cur_.kind == Token::Kind::kPunct && cur_.text == ":") {
        advance();
        std::string value;
        while (!(cur_.kind == Token::Kind::kPunct && cur_.text == ";")) {
          if (cur_.kind == Token::Kind::kEnd) fail(line, "unterminated attribute");
          if (!value.empty()) value += ' ';
          value += cur_.text;
          advance();
        }
        advance();  // ';'
        g.attrs.emplace(name, std::move(value));
      } else if (cur_.kind == Token::Kind::kPunct && cur_.text == "(") {
        // Complex attribute or subgroup — disambiguated by what follows ')'.
        std::vector<std::string> args;
        advance();
        while (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")")) {
          if (cur_.kind == Token::Kind::kEnd) fail(line, "unterminated arguments");
          if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ",")) args.push_back(cur_.text);
          advance();
        }
        advance();  // ')'
        if (cur_.kind == Token::Kind::kPunct && cur_.text == "{") {
          Group sub;
          sub.name = name;
          sub.args = std::move(args);
          sub.line = line;
          parse_group_body(sub);
          g.groups.push_back(std::move(sub));
        } else {
          if (cur_.kind == Token::Kind::kPunct && cur_.text == ";") advance();
          g.complex.emplace(name, std::move(args));
        }
      } else {
        fail(line, "expected ':' or '(' after '" + name + "'");
      }
    }
  }

  Lexer lex_;
  Token cur_{Token::Kind::kEnd, "", 0};
};

// ---------------------------------------------------------------------------
// Interpretation
// ---------------------------------------------------------------------------

std::vector<double> parse_number_list(const std::string& csv, std::size_t line) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string cell;
  while (std::getline(is, cell, ',')) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str()) fail(line, "bad number '" + cell + "'");
    out.push_back(v);
  }
  if (out.empty()) fail(line, "empty number list");
  return out;
}

std::optional<DelayTable> parse_table(const Group& g, double slew_scale, double value_scale,
                                      double load_scale) {
  const auto i1 = g.complex.find("index_1");
  const auto i2 = g.complex.find("index_2");
  const auto vals = g.complex.find("values");
  if (i1 == g.complex.end() || i2 == g.complex.end() || vals == g.complex.end())
    fail(g.line, "table group missing index_1/index_2/values");
  if (i1->second.size() != 1 || i2->second.size() != 1)
    fail(g.line, "index_1/index_2 expect one quoted list each");
  auto slews = parse_number_list(i1->second[0], g.line);
  auto loads = parse_number_list(i2->second[0], g.line);
  for (double& s : slews) s *= slew_scale;
  for (double& l : loads) l *= load_scale;
  std::vector<double> values;
  for (const std::string& row : vals->second) {
    const auto nums = parse_number_list(row, g.line);
    if (nums.size() != loads.size()) fail(g.line, "values row width != index_2 size");
    for (double v : nums) values.push_back(v * value_scale);
  }
  if (values.size() != slews.size() * loads.size())
    fail(g.line, "values row count != index_1 size");
  return DelayTable(std::move(slews), std::move(loads), std::move(values));
}

double parse_time_unit(const Group& lib) {
  const auto it = lib.attrs.find("time_unit");
  if (it == lib.attrs.end()) return 1e-9;
  const std::string& u = it->second;
  if (u.find("ps") != std::string::npos) return 1e-12;
  if (u.find("ns") != std::string::npos) return 1e-9;
  if (u.find("us") != std::string::npos) return 1e-6;
  fail(lib.line, "unsupported time_unit '" + u + "'");
}

double parse_cap_unit(const Group& lib) {
  const auto it = lib.complex.find("capacitive_load_unit");
  if (it == lib.complex.end()) return 1e-12;
  if (it->second.size() != 2) fail(lib.line, "capacitive_load_unit expects (value, unit)");
  const double mult = std::strtod(it->second[0].c_str(), nullptr);
  std::string unit = it->second[1];
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (unit == "pf") return mult * 1e-12;
  if (unit == "ff") return mult * 1e-15;
  fail(lib.line, "unsupported capacitive_load_unit '" + it->second[1] + "'");
}

}  // namespace

const LibertyCell& LibertyLibrary::cell(const std::string& cell_name) const {
  for (const LibertyCell& c : cells)
    if (c.name == cell_name) return c;
  throw LibertyError("liberty: no cell named '" + cell_name + "'");
}

LibertyLibrary parse_liberty(std::string_view text) {
  Parser parser(text);
  const Group lib = parser.parse_top();

  LibertyLibrary out;
  out.name = lib.args.empty() ? "" : lib.args[0];
  out.time_unit = parse_time_unit(lib);
  out.cap_unit = parse_cap_unit(lib);

  for (const Group& cell : lib.groups) {
    if (cell.name != "cell") continue;
    LibertyCell lc;
    lc.name = cell.args.empty() ? "" : cell.args[0];
    if (lc.name.empty()) fail(cell.line, "cell without a name");
    for (const Group& pin : cell.groups) {
      if (pin.name != "pin") continue;
      const std::string pin_name = pin.args.empty() ? "" : pin.args[0];
      if (const auto cap = pin.attrs.find("capacitance"); cap != pin.attrs.end())
        lc.input_caps[pin_name] = std::strtod(cap->second.c_str(), nullptr) * out.cap_unit;
      for (const Group& timing : pin.groups) {
        if (timing.name != "timing") continue;
        LibertyArc arc;
        if (const auto rp = timing.attrs.find("related_pin"); rp != timing.attrs.end())
          arc.related_pin = rp->second;
        for (const Group& table : timing.groups) {
          if (table.name == "cell_rise")
            arc.cell_rise = parse_table(table, out.time_unit, out.time_unit, out.cap_unit);
          else if (table.name == "rise_transition")
            arc.rise_transition =
                parse_table(table, out.time_unit, out.time_unit, out.cap_unit);
        }
        lc.arcs.push_back(std::move(arc));
      }
    }
    out.cells.push_back(std::move(lc));
  }
  if (out.cells.empty()) throw LibertyError("liberty: library has no cells");
  return out;
}

LibertyLibrary parse_liberty_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw LibertyError("liberty: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_liberty(ss.str());
}

Gate linearize(const LibertyCell& cell) {
  const LibertyArc* arc = nullptr;
  for (const LibertyArc& a : cell.arcs)
    if (a.cell_rise) arc = &a;
  if (arc == nullptr) throw LibertyError("linearize: cell '" + cell.name + "' has no cell_rise");

  const DelayTable& t = *arc->cell_rise;
  const double s0 = t.slew_axis().front();
  const double l0 = t.load_axis().front();
  const double l1 = t.load_axis().back();
  const double d0 = t.lookup(s0, l0);
  const double d1 = t.lookup(s0, l1);
  // ln2 * R * C fit: slope of delay vs load is ln2 * Rdrv.
  const double rdrv = (d1 - d0) / ((l1 - l0) * std::log(2.0));

  Gate g;
  g.name = cell.name;
  g.drive_resistance = std::max(rdrv, 1.0);
  g.intrinsic_delay = std::max(d0 - std::log(2.0) * g.drive_resistance * l0, 0.0);
  double cin = 0.0;
  for (const auto& [pin, cap] : cell.input_caps) {
    (void)pin;
    cin = std::max(cin, cap);
  }
  g.input_capacitance = cin;
  return g;
}

}  // namespace rct::sta
