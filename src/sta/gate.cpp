#include "sta/gate.hpp"

#include <stdexcept>

namespace rct::sta {

std::vector<Gate> builtin_library() {
  return {
      {"inv_x1", 8e-15, 2400.0, 35e-12},
      {"inv_x4", 32e-15, 600.0, 30e-12},
      {"buf_x2", 16e-15, 1200.0, 55e-12},
      {"nand2_x1", 10e-15, 2900.0, 45e-12},
      {"nor2_x1", 10e-15, 3400.0, 50e-12},
      {"dff_x1", 9e-15, 2600.0, 120e-12, 30e-12},
  };
}

const Gate& find_gate(const std::vector<Gate>& library, const std::string& name) {
  for (const Gate& g : library)
    if (g.name == name) return g;
  throw std::out_of_range("find_gate: no gate named '" + name + "'");
}

}  // namespace rct::sta
