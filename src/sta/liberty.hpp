#pragma once
// Liberty-lite: parser for the subset of the Synopsys Liberty (.lib) format
// that carries what a timer needs — pin capacitances and NLDM delay/slew
// tables — so characterized foundry data can drive the toolkit directly.
//
// Supported grammar (a strict subset; unknown attributes are ignored,
// unknown *groups* are skipped recursively):
//
//   library (name) {
//     time_unit : "1ns" ;
//     capacitive_load_unit (1, pf) ;
//     cell (inv_x1) {
//       pin (A) { direction : input ; capacitance : 0.008 ; }
//       pin (Z) {
//         direction : output ;
//         timing () {
//           related_pin : "A" ;
//           cell_rise (tmpl) {
//             index_1 ("0.01, 0.1");        /* input slew, time units  */
//             index_2 ("0.005, 0.02");      /* load, cap units         */
//             values ("0.02, 0.03", "0.04, 0.05");
//           }
//           rise_transition (tmpl) { ...same shape... }
//         }
//       }
//     }
//   }
//
// Comments (/* */ and //) are stripped.  Errors carry 1-based line numbers.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sta/gate.hpp"
#include "sta/nldm.hpp"

namespace rct::sta {

/// Error raised on malformed or unsupported Liberty text.
struct LibertyError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One timing arc of an output pin.
struct LibertyArc {
  std::string related_pin;
  std::optional<DelayTable> cell_rise;        ///< seconds
  std::optional<DelayTable> rise_transition;  ///< seconds
};

/// One parsed cell.
struct LibertyCell {
  std::string name;
  std::map<std::string, double> input_caps;  ///< farads, by pin name
  std::vector<LibertyArc> arcs;
};

/// A parsed library.
struct LibertyLibrary {
  std::string name;
  double time_unit = 1e-9;  ///< seconds per Liberty time unit
  double cap_unit = 1e-12;  ///< farads per Liberty cap unit
  std::vector<LibertyCell> cells;

  [[nodiscard]] const LibertyCell& cell(const std::string& cell_name) const;
};

/// Parses Liberty text.  Throws LibertyError on malformed input.
[[nodiscard]] LibertyLibrary parse_liberty(std::string_view text);

/// Parses a .lib file from disk.
[[nodiscard]] LibertyLibrary parse_liberty_file(const std::string& path);

/// Derives a linearized Gate from a Liberty cell for the bound-based flows:
/// input cap = max pin cap; drive resistance = d(delay)/d(load) slope of the
/// first arc's cell_rise at the smallest characterized slew; intrinsic =
/// extrapolated zero-load delay.  Throws LibertyError if the cell has no
/// cell_rise table.
[[nodiscard]] Gate linearize(const LibertyCell& cell);

}  // namespace rct::sta
