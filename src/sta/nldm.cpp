#include "sta/nldm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/effective_capacitance.hpp"
#include "linalg/root_find.hpp"
#include "moments/path_tracing.hpp"

namespace rct::sta {
namespace {

// Single-RC saturated-ramp response crossing: the gate's linearized output
// into a lumped load.  y(t) = (S(t) - S(t - tr)) / tr with
// S(t) = t - tau (1 - e^{-t/tau}).
double rc_ramp_crossing(double tau, double tr, double fraction) {
  auto s_int = [&](double t) {
    if (t <= 0.0) return 0.0;
    return t - tau * (-std::expm1(-t / tau));
  };
  auto y = [&](double t) { return (s_int(t) - s_int(t - tr)) / tr; };
  linalg::RootOptions opt;
  opt.x_tol = 1e-12 * (tau + tr);
  const auto root = linalg::bracket_and_solve(
      [&](double t) { return y(t) - fraction; }, tau + tr, 1e7 * (tau + tr), opt);
  if (!root) throw std::runtime_error("characterize: crossing not found");
  return *root;
}

void check_axis(const std::vector<double>& axis, const char* who) {
  if (axis.empty()) throw std::invalid_argument(std::string(who) + ": empty axis");
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (!(axis[i] > axis[i - 1]))
      throw std::invalid_argument(std::string(who) + ": axis must be strictly increasing");
}

}  // namespace

DelayTable::DelayTable(std::vector<double> slew_axis, std::vector<double> load_axis,
                       std::vector<double> values)
    : slews_(std::move(slew_axis)), loads_(std::move(load_axis)), values_(std::move(values)) {
  check_axis(slews_, "DelayTable(slew)");
  check_axis(loads_, "DelayTable(load)");
  if (values_.size() != slews_.size() * loads_.size())
    throw std::invalid_argument("DelayTable: values size mismatch");
}

double DelayTable::lookup(double slew, double load) const {
  auto bracket = [](const std::vector<double>& axis, double x, std::size_t& lo, double& frac) {
    if (x <= axis.front()) {
      lo = 0;
      frac = 0.0;
      return;
    }
    if (x >= axis.back()) {
      lo = axis.size() >= 2 ? axis.size() - 2 : 0;
      frac = axis.size() >= 2 ? 1.0 : 0.0;
      return;
    }
    const auto it = std::upper_bound(axis.begin(), axis.end(), x);
    lo = static_cast<std::size_t>(it - axis.begin()) - 1;
    frac = (x - axis[lo]) / (axis[lo + 1] - axis[lo]);
  };
  std::size_t si = 0;
  std::size_t li = 0;
  double sf = 0.0;
  double lf = 0.0;
  bracket(slews_, slew, si, sf);
  bracket(loads_, load, li, lf);
  const std::size_t cols = loads_.size();
  auto at = [&](std::size_t s, std::size_t l) { return values_[s * cols + l]; };
  const std::size_t s1 = std::min(si + 1, slews_.size() - 1);
  const std::size_t l1 = std::min(li + 1, loads_.size() - 1);
  const double a = at(si, li) * (1.0 - lf) + at(si, l1) * lf;
  const double b = at(s1, li) * (1.0 - lf) + at(s1, l1) * lf;
  return a * (1.0 - sf) + b * sf;
}

CharacterizedGate characterize(const Gate& gate, const std::vector<double>& slew_axis,
                               const std::vector<double>& load_axis) {
  check_axis(slew_axis, "characterize(slew)");
  check_axis(load_axis, "characterize(load)");
  std::vector<double> delays;
  std::vector<double> slews_out;
  delays.reserve(slew_axis.size() * load_axis.size());
  slews_out.reserve(delays.capacity());
  for (double tr : slew_axis) {
    for (double cl : load_axis) {
      const double tau = gate.drive_resistance * cl;
      const double t50 = rc_ramp_crossing(tau, tr, 0.5);
      delays.push_back(gate.intrinsic_delay + t50 - 0.5 * tr);
      slews_out.push_back(rc_ramp_crossing(tau, tr, 0.9) - rc_ramp_crossing(tau, tr, 0.1));
    }
  }
  return {gate, DelayTable(slew_axis, load_axis, std::move(delays)),
          DelayTable(slew_axis, load_axis, std::move(slews_out))};
}

TableStageResult table_stage_delay(const CharacterizedGate& cg, const RCTree& loaded_net,
                                   NodeId sink, double input_slew) {
  if (sink >= loaded_net.size())
    throw std::invalid_argument("table_stage_delay: sink out of range");
  const auto ceff = core::effective_capacitance(loaded_net, cg.gate.drive_resistance);
  TableStageResult out{};
  out.ceff = ceff.ceff;
  const double gate_delay = cg.delay.lookup(input_slew, ceff.ceff);
  // Wire delay from the gate output (net root, ideal-source view) to sink.
  const double wire = moments::elmore_delays(loaded_net)[sink];
  out.delay = gate_delay + wire;
  out.out_slew = cg.out_slew.lookup(input_slew, ceff.ceff);
  return out;
}

}  // namespace rct::sta
