#pragma once
// NLDM-style gate characterization and table-driven stage timing.
//
// Production timers do not bound gate delays; they look them up in
// characterized tables indexed by (input slew, output load) and reduce the
// RC load to an effective capacitance first.  This module closes the loop
// for the toolkit:
//
//   * characterize(): builds delay / output-slew tables for a linearized
//     gate by sweeping saturated-ramp inputs into lumped loads, using the
//     closed-form single-RC ramp response (our exact engine's math).
//   * DelayTable: bilinear interpolation with clamped extrapolation —
//     the standard NLDM lookup.
//   * table_stage_delay(): Ceff-reduce the RC load, look the delay up, and
//     add the wire delay from the driving point to the sink.
//
// Tests compare this "industry-style" estimate against the paper's
// guaranteed bounds and the exact simulator: tables are accurate but carry
// no guarantee; the bounds are loose but sound.  Both views matter.

#include <vector>

#include "rctree/rctree.hpp"
#include "sta/gate.hpp"

namespace rct::sta {

/// A 2D lookup table over (input slew, load capacitance).
class DelayTable {
 public:
  /// Axes must be strictly increasing; values is row-major
  /// [slew_index][load_index].
  DelayTable(std::vector<double> slew_axis, std::vector<double> load_axis,
             std::vector<double> values);

  /// Bilinear interpolation; indices outside the grid are clamped to the
  /// edge (standard NLDM extrapolation policy).
  [[nodiscard]] double lookup(double slew, double load) const;

  [[nodiscard]] const std::vector<double>& slew_axis() const { return slews_; }
  [[nodiscard]] const std::vector<double>& load_axis() const { return loads_; }

 private:
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;
};

/// Characterized view of one gate: 50% delay and 10-90 output slew tables.
struct CharacterizedGate {
  Gate gate;
  DelayTable delay;
  DelayTable out_slew;
};

/// Characterizes `gate` over the given axes by analytic simulation of the
/// linearized gate (drive resistance into a lumped load, saturated-ramp
/// input).  Axes must be non-empty and increasing.
[[nodiscard]] CharacterizedGate characterize(const Gate& gate,
                                             const std::vector<double>& slew_axis,
                                             const std::vector<double>& load_axis);

/// Industry-style stage delay: Ceff-reduce the loaded net, look up the gate
/// delay at (input_slew, Ceff), then add the wire delay from driving point
/// to `sink` (difference of Elmore delays).  Returns the stage delay and
/// the table-estimated output slew.
struct TableStageResult {
  double delay;
  double out_slew;
  double ceff;
};
[[nodiscard]] TableStageResult table_stage_delay(const CharacterizedGate& cg,
                                                 const RCTree& loaded_net, NodeId sink,
                                                 double input_slew);

}  // namespace rct::sta
