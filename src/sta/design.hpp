#pragma once
// Design-level STA on a gate/net graph, using the paper's bounds as the
// delay model.
//
// A Design is a DAG of gate instances connected by RC-tree nets.  Arrival
// *windows* propagate forward in topological order:
//
//   upper arrival = launch + sum(intrinsic + T_D)            — guaranteed
//   lower arrival = launch + sum(intrinsic + max(T_D - s,0)) — guaranteed
//
// so every reported endpoint slack is safe: a path that passes with the
// upper-bound arrival passes in reality (Theorem), and hold checks done
// with the lower bound are equally safe (Corollary 1).  Flops ("dff*"
// gates) are path endpoints and new launch points; primary inputs launch
// at t = 0.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rctree/rctree.hpp"
#include "sta/gate.hpp"

namespace rct::sta {

/// A pin connection on a net: which wire node feeds which instance input.
struct NetPin {
  std::string wire_node;  ///< node name inside the net's RC tree
  std::string instance;   ///< receiving instance name
};

/// A gate/net design under construction.
class Design {
 public:
  explicit Design(std::vector<Gate> library) : library_(std::move(library)) {}

  /// Adds a gate instance.  Gate type must exist in the library.
  void add_instance(const std::string& name, const std::string& gate_type);

  /// Adds a net: `driver` is an instance name or a primary-input name
  /// declared with add_primary_input.  `wire` is the wire-only RC tree; the
  /// driver's resistance is added by the timer.  Each pin maps a wire node
  /// to a receiving instance.
  void add_net(const std::string& driver, RCTree wire, std::vector<NetPin> pins);

  /// Declares a primary input (launches at t = 0 through a given drive
  /// resistance).
  void add_primary_input(const std::string& name, double drive_resistance);

  [[nodiscard]] const std::vector<Gate>& library() const { return library_; }

  /// Timing result for one instance input pin (a "timing arc endpoint").
  struct Arrival {
    std::string instance;
    double upper;  ///< guaranteed-latest arrival (Elmore bound)
    double lower;  ///< guaranteed-earliest arrival (mu - sigma bound)
  };

  /// Endpoint slack row (flop data pins).
  struct EndpointSlack {
    std::string instance;
    double arrival_upper;
    double setup_slack;  ///< clock_period - arrival_upper (safe sign-off)
    double hold_slack;   ///< arrival_lower - hold_time (safe: lower bound
                         ///< can only under-state the true earliest arrival)
  };

  /// Full-design report.
  struct Report {
    std::vector<Arrival> arrivals;          ///< per instance, topological order
    std::vector<EndpointSlack> endpoints;   ///< flops, worst first
    double worst_arrival_upper = 0.0;
    double worst_slack = 0.0;
  };

  /// Propagates arrival windows and returns the report.  Throws
  /// std::invalid_argument on dangling references or combinational loops.
  [[nodiscard]] Report analyze(double clock_period) const;

 private:
  struct Instance {
    std::string name;
    std::size_t gate_index;
  };
  struct Net {
    std::string driver;  // instance or primary input
    RCTree wire;
    std::vector<NetPin> pins;
  };
  struct PrimaryInput {
    std::string name;
    double drive_resistance;
  };

  [[nodiscard]] const Gate& gate_of(const Instance& inst) const {
    return library_[inst.gate_index];
  }
  [[nodiscard]] bool is_flop(const Instance& inst) const {
    return gate_of(inst).name.rfind("dff", 0) == 0;
  }

  std::vector<Gate> library_;
  std::vector<Instance> instances_;
  std::map<std::string, std::size_t> instance_index_;
  std::vector<Net> nets_;
  std::vector<PrimaryInput> primary_inputs_;
};

}  // namespace rct::sta
