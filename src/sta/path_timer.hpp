#pragma once
// STA-lite: bound-based timing of a gate/interconnect path.
//
// A path is a chain of stages; each stage is a driving gate, the RC wire
// tree it drives, and the sink pin the next stage hangs on.  Per stage the
// timer forms the *loaded net* (driver resistance as a new root section,
// receiver input capacitances added at sink pins) and applies the paper's
// machinery:
//
//   stage delay upper bound = intrinsic + T_D(sink)          (Theorem)
//   stage delay lower bound = intrinsic + max(T_D - sigma,0) (Corollary 1)
//   slew propagation:  sigma_out^2 = sigma_net^2 + sigma_in^2
//                      (central moments add under convolution, Appendix B)
//
// Path bounds are the stage sums; an optional exact mode (eigensolver per
// stage net) reports the true 50% stage delays for bound-tightness audits.

#include <optional>
#include <string>
#include <vector>

#include "rctree/rctree.hpp"
#include "sta/gate.hpp"

namespace rct::sta {

/// Extra capacitive load attached to a wire node (a receiver pin).
struct SinkLoad {
  NodeId node;
  double capacitance;
};

/// Rebuilds `wire` with a driver root section (resistance `driver_resistance`,
/// zero cap, node name "drv") and `loads` added to node capacitances.
[[nodiscard]] RCTree load_net(const RCTree& wire, double driver_resistance,
                              const std::vector<SinkLoad>& loads);

/// One stage of a path.
struct Stage {
  Gate driver;               ///< gate launching into the wire
  RCTree wire;               ///< wire-only RC tree (no driver resistance)
  std::string sink;          ///< wire node the next stage's input pin sits on
  std::vector<SinkLoad> extra_loads;  ///< other receiver pins on this net
  double sink_load = 0.0;    ///< input cap of the next stage's gate (farads)
};

/// Timing results for one stage.
struct StageTiming {
  std::string gate;
  std::string sink;
  double delay_upper;   ///< intrinsic + T_D
  double delay_lower;   ///< intrinsic + max(T_D - sigma, 0)
  double slew_sigma;    ///< accumulated sigma after this stage
  std::optional<double> delay_exact;  ///< intrinsic + exact 50% delay
};

/// Whole-path timing.
struct PathTiming {
  std::vector<StageTiming> stages;
  double path_upper = 0.0;
  double path_lower = 0.0;
  std::optional<double> path_exact;
};

/// Times a path.  `input_sigma` is the sigma of the primary input's
/// derivative (0 for an ideal step).  With `with_exact`, each stage net is
/// also solved exactly.
[[nodiscard]] PathTiming time_path(const std::vector<Stage>& path, double input_sigma = 0.0,
                                   bool with_exact = false);

/// Aligned text rendering of a PathTiming (times in ps).
[[nodiscard]] std::string format_path_timing(const PathTiming& timing);

}  // namespace rct::sta
