#include "sta/path_timer.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "analysis/tree_context.hpp"
#include "moments/central.hpp"
#include "sim/exact.hpp"

namespace rct::sta {

RCTree load_net(const RCTree& wire, double driver_resistance, const std::vector<SinkLoad>& loads) {
  if (!(driver_resistance > 0.0))
    throw std::invalid_argument("load_net: driver resistance must be > 0");
  std::vector<double> caps(wire.size());
  for (NodeId i = 0; i < wire.size(); ++i) caps[i] = wire.capacitance(i);
  for (const SinkLoad& l : loads) {
    if (l.node >= wire.size()) throw std::invalid_argument("load_net: sink node out of range");
    caps[l.node] += l.capacitance;
  }

  RCTreeBuilder b;
  const NodeId drv = b.add_node("drv", kSource, driver_resistance, 0.0);
  for (NodeId i = 0; i < wire.size(); ++i) {
    const NodeId p = wire.parent(i);
    b.add_node(wire.name(i), p == kSource ? drv : p + 1, wire.resistance(i), caps[i]);
  }
  return std::move(b).build();
}

PathTiming time_path(const std::vector<Stage>& path, double input_sigma, bool with_exact) {
  PathTiming out;
  double sigma_acc_sq = input_sigma * input_sigma;
  double exact_acc = 0.0;

  for (const Stage& stage : path) {
    std::vector<SinkLoad> loads = stage.extra_loads;
    const NodeId sink_in_wire = stage.wire.at(stage.sink);
    if (stage.sink_load > 0.0) loads.push_back({sink_in_wire, stage.sink_load});
    const RCTree net = load_net(stage.wire, stage.driver.drive_resistance, loads);
    const NodeId sink = net.at(stage.sink);

    const analysis::TreeContext ctx(net);
    const auto stats = ctx.impulse_stats()[sink];
    StageTiming st;
    st.gate = stage.driver.name;
    st.sink = stage.sink;
    st.delay_upper = stage.driver.intrinsic_delay + stats.mean;
    st.delay_lower = stage.driver.intrinsic_delay + std::max(stats.mean - stats.sigma, 0.0);
    sigma_acc_sq += stats.mu2;
    st.slew_sigma = std::sqrt(sigma_acc_sq);
    if (with_exact) {
      const sim::ExactAnalysis exact(net);
      st.delay_exact = stage.driver.intrinsic_delay + exact.step_delay(sink);
      exact_acc += *st.delay_exact;
    }
    out.path_upper += st.delay_upper;
    out.path_lower += st.delay_lower;
    out.stages.push_back(std::move(st));
  }
  if (with_exact) out.path_exact = exact_acc;
  return out;
}

std::string format_path_timing(const PathTiming& timing) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-10s %-10s %12s %12s %12s %12s\n", "gate", "sink",
                "lower(ps)", "upper(ps)", "exact(ps)", "slew sigma");
  os << buf;
  auto ps = [](double s) { return s * 1e12; };
  for (const auto& st : timing.stages) {
    char exact_col[32];
    if (st.delay_exact)
      std::snprintf(exact_col, sizeof(exact_col), "%12.2f", ps(*st.delay_exact));
    else
      std::snprintf(exact_col, sizeof(exact_col), "%12s", "-");
    std::snprintf(buf, sizeof(buf), "%-10s %-10s %12.2f %12.2f %s %12.2f\n", st.gate.c_str(),
                  st.sink.c_str(), ps(st.delay_lower), ps(st.delay_upper), exact_col,
                  ps(st.slew_sigma));
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "path: lower %.2fps  upper %.2fps", ps(timing.path_lower),
                ps(timing.path_upper));
  os << buf;
  if (timing.path_exact) {
    std::snprintf(buf, sizeof(buf), "  exact %.2fps", ps(*timing.path_exact));
    os << buf;
  }
  os << "\n";
  return os.str();
}

}  // namespace rct::sta
