#include "sta/design.hpp"

#include <algorithm>
#include <stdexcept>

#include "moments/central.hpp"
#include "sta/path_timer.hpp"

namespace rct::sta {

void Design::add_instance(const std::string& name, const std::string& gate_type) {
  if (instance_index_.contains(name))
    throw std::invalid_argument("Design: duplicate instance '" + name + "'");
  std::size_t gi = library_.size();
  for (std::size_t i = 0; i < library_.size(); ++i)
    if (library_[i].name == gate_type) gi = i;
  if (gi == library_.size())
    throw std::invalid_argument("Design: unknown gate type '" + gate_type + "'");
  instance_index_[name] = instances_.size();
  instances_.push_back({name, gi});
}

void Design::add_net(const std::string& driver, RCTree wire, std::vector<NetPin> pins) {
  for (const NetPin& p : pins) {
    if (!instance_index_.contains(p.instance))
      throw std::invalid_argument("Design: net pin references unknown instance '" + p.instance +
                                  "'");
    if (!wire.find(p.wire_node))
      throw std::invalid_argument("Design: net pin references unknown wire node '" +
                                  p.wire_node + "'");
  }
  nets_.push_back({driver, std::move(wire), std::move(pins)});
}

void Design::add_primary_input(const std::string& name, double drive_resistance) {
  if (!(drive_resistance > 0.0))
    throw std::invalid_argument("Design: primary input needs positive drive resistance");
  primary_inputs_.push_back({name, drive_resistance});
}

Design::Report Design::analyze(double clock_period) const {
  if (!(clock_period > 0.0)) throw std::invalid_argument("Design: clock period must be > 0");

  // Arrival windows at each instance *input*; flops and primary inputs
  // re-launch at 0.
  struct Window {
    double upper = 0.0;
    double lower = 0.0;
    bool known = false;
  };
  std::map<std::string, Window> at_input;  // instance -> data arrival window

  // An instance's arrival is final only after ALL nets feeding it are done;
  // otherwise a multi-fanin gate could launch downstream with a partial
  // (too-early) window.
  std::map<std::string, std::size_t> fanin_total;
  std::map<std::string, std::size_t> fanin_done;
  for (const Net& net : nets_)
    for (const NetPin& p : net.pins) ++fanin_total[p.instance];

  auto driver_launch = [&](const std::string& name, double& res, Window& w) -> bool {
    // Primary input?
    for (const auto& pi : primary_inputs_) {
      if (pi.name == name) {
        res = pi.drive_resistance;
        w = {0.0, 0.0, true};
        return true;
      }
    }
    const auto it = instance_index_.find(name);
    if (it == instance_index_.end())
      throw std::invalid_argument("Design: net driven by unknown '" + name + "'");
    const Instance& inst = instances_[it->second];
    res = gate_of(inst).drive_resistance;
    if (is_flop(inst)) {
      // Flop output launches a fresh path at clk edge (t = 0) + clk->q.
      w = {gate_of(inst).intrinsic_delay, gate_of(inst).intrinsic_delay, true};
      return true;
    }
    const auto win = at_input.find(name);
    if (win == at_input.end() || !win->second.known) return false;  // not ready yet
    if (fanin_done[name] < fanin_total[name]) return false;         // partial window
    w = {win->second.upper + gate_of(inst).intrinsic_delay,
         win->second.lower + gate_of(inst).intrinsic_delay, true};
    return true;
  };

  // Relaxation over nets until a fixed point (simple worklist; a
  // combinational loop never converges and is detected by pass count).
  std::vector<char> done(nets_.size(), 0);
  std::size_t remaining = nets_.size();
  for (std::size_t pass = 0; remaining > 0; ++pass) {
    if (pass > nets_.size() + 1)
      throw std::invalid_argument("Design: combinational loop (or missing driver arrival)");
    for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
      if (done[ni]) continue;
      const Net& net = nets_[ni];
      double res = 0.0;
      Window launch;
      if (!driver_launch(net.driver, res, launch)) continue;

      // Build the loaded net once; per-pin metrics by sink node.
      std::vector<SinkLoad> loads;
      for (const NetPin& p : net.pins) {
        const Instance& rx = instances_[instance_index_.at(p.instance)];
        loads.push_back({net.wire.at(p.wire_node), gate_of(rx).input_capacitance});
      }
      const RCTree loaded = load_net(net.wire, res, loads);
      const auto stats = moments::impulse_stats(loaded);
      for (const NetPin& p : net.pins) {
        const NodeId sink = loaded.at(p.wire_node);
        Window& w = at_input[p.instance];
        const double up = launch.upper + stats[sink].mean;
        const double lo =
            launch.lower + std::max(stats[sink].mean - stats[sink].sigma, 0.0);
        w.upper = w.known ? std::max(w.upper, up) : up;
        w.lower = w.known ? std::min(w.lower, lo) : lo;
        w.known = true;
        ++fanin_done[p.instance];
      }
      done[ni] = 1;
      --remaining;
    }
  }

  Report report;
  for (const Instance& inst : instances_) {
    const auto it = at_input.find(inst.name);
    if (it == at_input.end()) continue;  // unconnected input
    report.arrivals.push_back({inst.name, it->second.upper, it->second.lower});
    report.worst_arrival_upper = std::max(report.worst_arrival_upper, it->second.upper);
    if (is_flop(inst)) {
      report.endpoints.push_back({inst.name, it->second.upper,
                                  clock_period - it->second.upper,
                                  it->second.lower - gate_of(inst).hold_time});
    }
  }
  std::sort(report.endpoints.begin(), report.endpoints.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              return a.setup_slack < b.setup_slack;
            });
  report.worst_slack =
      report.endpoints.empty() ? clock_period : report.endpoints.front().setup_slack;
  return report;
}

}  // namespace rct::sta
