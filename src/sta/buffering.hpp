#pragma once
// Van Ginneken buffer insertion — the canonical synthesis application of
// the Elmore metric (the paper's intro: "used during logic synthesis to
// estimate wiring delays").
//
// Given a wire RC tree, required arrival times at its sinks, a driving gate
// and a buffer library, choose buffer locations maximizing the worst slack
// at the driver, using the classic bottom-up dynamic program over
// non-dominated (downstream capacitance, required time) pairs.  Delays are
// Elmore delays, so every reported slack is a guaranteed (conservative)
// slack by the paper's Theorem.
//
// Buffer convention: a buffer inserted "at node v" sits between the edge
// above v and v itself — its input capacitance is what the upstream region
// sees; its output drives v's capacitance and v's entire subtree.

#include <map>
#include <string>
#include <vector>

#include "rctree/rctree.hpp"
#include "sta/gate.hpp"

namespace rct::sta {

/// Problem statement for buffer insertion on one net.
struct BufferingProblem {
  RCTree wire;                          ///< wire-only RC tree
  std::map<NodeId, double> required;    ///< RAT (s) at sink nodes
  Gate driver;                          ///< gate driving the net root
  std::vector<Gate> buffers;            ///< candidate buffer cells (may be empty)
  /// Nodes where insertion is legal; empty = everywhere.
  std::vector<NodeId> legal_positions;
};

/// One chosen insertion.
struct BufferInsertion {
  std::string node;  ///< wire node name
  std::string gate;  ///< buffer cell name
};

/// Result of the optimization.
struct BufferingResult {
  double slack;                              ///< best achievable worst slack (s)
  double unbuffered_slack;                   ///< worst slack with no buffers (s)
  std::vector<BufferInsertion> insertions;   ///< chosen buffers (may be empty)
  std::size_t candidates_kept;               ///< surviving DP options at the root
};

/// Runs the dynamic program.  Throws std::invalid_argument if `required`
/// is empty or names non-existent nodes.
[[nodiscard]] BufferingResult van_ginneken(const BufferingProblem& problem);

/// Independently evaluates the worst slack of a *given* buffer placement by
/// region-wise Elmore arrival propagation (same convention as the DP).
/// Used to audit DP results and to compare hand placements.  Throws
/// std::invalid_argument for unknown nodes or buffer cell names.
[[nodiscard]] double evaluate_buffering(const BufferingProblem& problem,
                                        const std::vector<BufferInsertion>& insertions);

}  // namespace rct::sta
