#include "sta/buffering.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rct::sta {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A DP candidate: downstream cap C, required time Q at the current point,
// and the insertions that produced it.
struct Option {
  double cap;
  double q;
  std::vector<BufferInsertion> insertions;
};

// Keep only non-dominated options: sort by cap ascending and require q to
// strictly decrease (an option with both larger cap and smaller-or-equal q
// is useless).
void prune(std::vector<Option>& opts) {
  std::sort(opts.begin(), opts.end(), [](const Option& a, const Option& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.q > b.q;
  });
  std::vector<Option> kept;
  double best_q = -kInf;
  for (auto& o : opts) {
    if (o.q > best_q) {
      best_q = o.q;
      kept.push_back(std::move(o));
    }
  }
  opts = std::move(kept);
}

// Cross-product merge of two branch option sets at a junction.
std::vector<Option> merge(const std::vector<Option>& a, const std::vector<Option>& b) {
  std::vector<Option> out;
  out.reserve(a.size() * b.size());
  for (const Option& x : a) {
    for (const Option& y : b) {
      Option m;
      m.cap = x.cap + y.cap;
      m.q = std::min(x.q, y.q);
      m.insertions = x.insertions;
      m.insertions.insert(m.insertions.end(), y.insertions.begin(), y.insertions.end());
      out.push_back(std::move(m));
    }
  }
  prune(out);
  return out;
}

}  // namespace

BufferingResult van_ginneken(const BufferingProblem& problem) {
  const RCTree& t = problem.wire;
  if (problem.required.empty())
    throw std::invalid_argument("van_ginneken: no required times given");
  for (const auto& [node, rat] : problem.required) {
    (void)rat;
    if (node >= t.size())
      throw std::invalid_argument("van_ginneken: required time on non-existent node");
  }
  std::vector<char> legal(t.size(), problem.legal_positions.empty() ? 1 : 0);
  for (NodeId v : problem.legal_positions) {
    if (v >= t.size())
      throw std::invalid_argument("van_ginneken: legal position out of range");
    legal[v] = 1;
  }

  const std::size_t n = t.size();
  // opts[i]: candidates at the TOP of edge r_i (seen from i's parent),
  // filled in reverse index order so children are ready before parents.
  std::vector<std::vector<Option>> opts(n);

  auto dp_at = [&](NodeId i, bool with_buffers) {
    // 1. Base: the node's own cap and RAT (inf for non-sinks).
    Option base;
    base.cap = t.capacitance(i);
    const auto it = problem.required.find(i);
    base.q = (it != problem.required.end()) ? it->second : kInf;
    std::vector<Option> cur{base};

    // 2. Fold in children (already pushed through their edges).
    for (NodeId ch : t.children(i)) cur = merge(cur, opts[ch]);

    // 3. Optional buffer right here (between the edge above and the node).
    if (with_buffers && legal[i]) {
      std::vector<Option> buffered;
      for (const Gate& buf : problem.buffers) {
        // Best unbuffered option for this buffer: maximize q - Rb*C.
        const Option* best = nullptr;
        double best_q = -kInf;
        for (const Option& o : cur) {
          const double q2 = o.q - buf.intrinsic_delay - buf.drive_resistance * o.cap;
          if (q2 > best_q) {
            best_q = q2;
            best = &o;
          }
        }
        if (best != nullptr && best_q > -kInf) {
          Option b;
          b.cap = buf.input_capacitance;
          b.q = best_q;
          b.insertions = best->insertions;
          b.insertions.push_back({t.name(i), buf.name});
          buffered.push_back(std::move(b));
        }
      }
      cur.insert(cur.end(), std::make_move_iterator(buffered.begin()),
                 std::make_move_iterator(buffered.end()));
      prune(cur);
    }

    // 4. Push through the edge: wire delay r_i * C hits every sink below.
    for (Option& o : cur) o.q -= t.resistance(i) * o.cap;
    prune(cur);
    opts[i] = std::move(cur);
  };

  auto run = [&](bool with_buffers) {
    for (NodeId i = n; i-- > 0;) dp_at(i, with_buffers);
    // Combine the root branches at the source, then charge the driver.
    std::vector<Option> all{Option{0.0, kInf, {}}};
    for (NodeId r : t.children_of_source()) all = merge(all, opts[r]);
    double best = -kInf;
    const Option* winner = nullptr;
    for (const Option& o : all) {
      const double slack =
          o.q - problem.driver.intrinsic_delay - problem.driver.drive_resistance * o.cap;
      if (slack > best) {
        best = slack;
        winner = &o;
      }
    }
    struct RunResult {
      double slack;
      std::vector<BufferInsertion> ins;
      std::size_t kept;
    };
    return RunResult{best, winner ? winner->insertions : std::vector<BufferInsertion>{},
                     all.size()};
  };

  const auto unbuffered = run(false);
  const auto buffered = problem.buffers.empty() ? unbuffered : run(true);

  BufferingResult res;
  res.unbuffered_slack = unbuffered.slack;
  res.slack = buffered.slack;
  res.insertions = buffered.ins;
  res.candidates_kept = buffered.kept;
  return res;
}

double evaluate_buffering(const BufferingProblem& problem,
                          const std::vector<BufferInsertion>& insertions) {
  const RCTree& t = problem.wire;
  if (problem.required.empty())
    throw std::invalid_argument("evaluate_buffering: no required times given");
  // Resolve insertions to (node -> gate).
  std::vector<const Gate*> buf_at(t.size(), nullptr);
  for (const BufferInsertion& ins : insertions) {
    const auto id = t.find(ins.node);
    if (!id) throw std::invalid_argument("evaluate_buffering: unknown node '" + ins.node + "'");
    const Gate* gate = nullptr;
    for (const Gate& g : problem.buffers)
      if (g.name == ins.gate) gate = &g;
    if (gate == nullptr)
      throw std::invalid_argument("evaluate_buffering: unknown buffer '" + ins.gate + "'");
    buf_at[*id] = gate;
  }

  // Region-aware downstream caps: a buffered node contributes only its
  // buffer's input capacitance to the region above it.
  std::vector<double> ctot(t.size(), 0.0);
  for (NodeId i = t.size(); i-- > 0;) {
    ctot[i] += t.capacitance(i);
    for (NodeId ch : t.children(i))
      ctot[i] += buf_at[ch] ? buf_at[ch]->input_capacitance : ctot[ch];
  }
  double root_cap = 0.0;
  for (NodeId r : t.children_of_source())
    root_cap += buf_at[r] ? buf_at[r]->input_capacitance : ctot[r];

  // Per-region Elmore arrival propagation; crossing into a buffered node
  // pays the wire delay for its input pin plus the buffer stage delay.
  std::vector<double> arrive(t.size(), 0.0);
  const double launch =
      problem.driver.intrinsic_delay + problem.driver.drive_resistance * root_cap;
  for (NodeId i = 0; i < t.size(); ++i) {
    const NodeId p = t.parent(i);
    const double at_parent = (p == kSource) ? launch : arrive[p];
    if (buf_at[i]) {
      const Gate& buf = *buf_at[i];
      arrive[i] = at_parent + t.resistance(i) * buf.input_capacitance +
                  buf.intrinsic_delay + buf.drive_resistance * ctot[i];
    } else {
      arrive[i] = at_parent + t.resistance(i) * ctot[i];
    }
  }
  double slack = kInf;
  for (const auto& [node, q] : problem.required) {
    if (node >= t.size())
      throw std::invalid_argument("evaluate_buffering: required node out of range");
    slack = std::min(slack, q - arrive[node]);
  }
  return slack;
}

}  // namespace rct::sta
