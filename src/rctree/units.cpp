#include "rctree/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rct {

std::optional<double> parse_engineering(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string s(text);
  const char* begin = s.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  if (!std::isfinite(base)) return std::nullopt;

  std::string_view rest(end);
  double mult = 1.0;
  if (!rest.empty()) {
    // "meg" must be checked before "m".
    auto lower = [](char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); };
    std::string low;
    low.reserve(rest.size());
    for (char c : rest) low.push_back(lower(c));
    if (low.rfind("meg", 0) == 0) {
      mult = 1e6;
    } else {
      switch (low[0]) {
        case 'f': mult = 1e-15; break;
        case 'p': mult = 1e-12; break;
        case 'n': mult = 1e-9; break;
        case 'u': mult = 1e-6; break;
        case 'm': mult = 1e-3; break;
        case 'k': mult = 1e3; break;
        case 'g': mult = 1e9; break;
        case 't': mult = 1e12; break;
        default:
          // Bare unit letters like "F" / "ohm": accept as multiplier 1 only
          // if alphabetic; otherwise malformed.
          if (!std::isalpha(static_cast<unsigned char>(low[0]))) return std::nullopt;
          mult = 1.0;
          break;
      }
    }
  }
  return base * mult;
}

std::string format_engineering(double value, std::string_view unit) {
  struct Scale {
    double mult;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},   {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  char buf[64];
  if (value == 0.0) {
    std::snprintf(buf, sizeof(buf), "0%.*s", static_cast<int>(unit.size()), unit.data());
    return buf;
  }
  const double mag = std::abs(value);
  for (const auto& s : kScales) {
    if (mag >= s.mult * 0.9999995) {
      std::snprintf(buf, sizeof(buf), "%.4g%s%.*s", value / s.mult, s.suffix,
                    static_cast<int>(unit.size()), unit.data());
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.4g%.*s", value, static_cast<int>(unit.size()), unit.data());
  return buf;
}

std::string format_time(double seconds) { return format_engineering(seconds, "s"); }

}  // namespace rct
