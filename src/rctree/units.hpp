#pragma once
// Engineering-notation value parsing and formatting (SPICE conventions).
//
// Accepts the usual SPICE suffixes, case-insensitive:
//   f(emto) p(ico) n(ano) u(micro) m(illi) k(ilo) meg(a) g(iga) t(era)
// Trailing unit letters after the suffix (e.g. "100pF", "1kohm") are
// ignored, as in SPICE.

#include <optional>
#include <string>
#include <string_view>

namespace rct {

/// Parses "2.5p", "1meg", "100", "3.3nF" ... Returns nullopt on malformed
/// input (empty, no leading number, NaN/Inf).
[[nodiscard]] std::optional<double> parse_engineering(std::string_view text);

/// Formats a value with an engineering suffix and the given unit, e.g.
/// format_engineering(2.5e-12, "F") == "2.5pF".  Uses 4 significant digits.
[[nodiscard]] std::string format_engineering(double value, std::string_view unit = "");

/// Convenience: format seconds as e.g. "0.919ns".
[[nodiscard]] std::string format_time(double seconds);

}  // namespace rct
