#pragma once
// Graphviz DOT export of an RC tree, optionally annotated with per-node
// metrics (Elmore delay, bounds) — handy for debugging parasitics and for
// documentation figures.

#include <map>
#include <string>
#include <string_view>

#include "rctree/rctree.hpp"

namespace rct {

/// Options for DOT rendering.
struct DotOptions {
  bool show_values = true;                 ///< print R/C on edges/nodes
  std::map<NodeId, std::string> annotations;  ///< extra per-node label lines
  std::string graph_name = "rctree";
};

/// Renders the tree as a DOT digraph (source node included).
[[nodiscard]] std::string to_dot(const RCTree& tree, const DotOptions& options = {});

}  // namespace rct
