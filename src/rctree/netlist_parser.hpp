#pragma once
// SPICE-deck-like netlist parser for RC trees.
//
// Grammar (one statement per line; '*' starts a comment; blank lines ok):
//
//   .title <free text>          optional
//   .input <node>               required: the node driven by the ideal source
//   .probe <node>               optional, repeatable: outputs of interest
//   R<id> <nodeA> <nodeB> <val> resistor (val accepts SPICE suffixes)
//   C<id> <node>  0      <val>  grounded capacitor ('0' or 'gnd' is ground)
//   .end                        optional
//
// The element graph must form a tree rooted at the .input node: exactly one
// resistive path from the source to every node, no resistors to ground, no
// floating capacitors.  Parallel capacitors at a node are summed (SPICE
// semantics); a capacitor on the input node is ignored with a warning (an
// ideal source clamps that node).

#include <string>
#include <string_view>
#include <vector>

#include "rctree/rctree.hpp"
#include "robust/error.hpp"

namespace rct {

/// Result of parsing a netlist deck.
struct ParsedNetlist {
  std::string title;
  RCTree tree;
  std::vector<NodeId> probes;         ///< ids of .probe nodes
  std::vector<std::string> warnings;  ///< non-fatal issues (ignored input cap, capless nodes)
};

/// Error thrown on malformed decks — a robust::Error with a typed code
/// plus the file path (when parsed from disk) and 1-based line number.
struct NetlistError : robust::Error {
  using robust::Error::Error;
  /// Pre-taxonomy convenience: a bare message is a syntax error.
  explicit NetlistError(const std::string& message)
      : robust::Error(robust::Code::kSyntax, message, {}, "netlist") {}
};

/// Parses a deck from text.  Throws NetlistError on malformed input.
[[nodiscard]] ParsedNetlist parse_netlist(std::string_view text);

/// Parses a deck from a file.  Throws NetlistError (also for I/O failure).
[[nodiscard]] ParsedNetlist parse_netlist_file(const std::string& path);

}  // namespace rct
