#include "rctree/routing.hpp"

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace rct::route {
namespace {

// A point of the routed geometry a later connection may attach to.
struct Attach {
  double x;
  double y;
  NodeId node;
  std::string name;
};

// Expands a straight run of `length` um into RC segments hanging under
// `from`; returns the far node.  Zero-length runs still add one tiny
// resistor so tree invariants (positive edge resistance) hold.
NodeId add_run(RCTreeBuilder& b, NodeId from, double length, const RouteOptions& opt,
               std::size_t& counter, const std::string& end_name, double end_cap) {
  const double min_res = 1e-6;
  if (length <= 1e-9) {
    return b.add_node(end_name, from, min_res, end_cap);
  }
  const auto segs = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(length * static_cast<double>(opt.segments_per_100um) / 100.0)));
  const double r_seg = std::max(opt.wire.res_per_length * length / static_cast<double>(segs),
                                min_res);
  const double c_seg = opt.wire.cap_per_length * length / static_cast<double>(segs);
  NodeId prev = from;
  for (std::size_t s = 1; s < segs; ++s)
    prev = b.add_node("w" + std::to_string(counter++), prev, r_seg, c_seg);
  return b.add_node(end_name, prev, r_seg, c_seg + end_cap);
}

}  // namespace

RoutedNet route_net(const Pin& driver, const std::vector<Pin>& sinks,
                    const RouteOptions& options) {
  if (sinks.empty()) throw std::invalid_argument("route_net: no sinks");
  if (!(options.driver_resistance > 0.0) || !(options.wire.res_per_length > 0.0) ||
      options.wire.cap_per_length < 0.0 || options.segments_per_100um < 1)
    throw std::invalid_argument("route_net: bad options");
  {
    std::set<std::string> names{driver.name};
    for (const Pin& s : sinks)
      if (!names.insert(s.name).second)
        throw std::invalid_argument("route_net: duplicate pin name '" + s.name + "'");
  }

  RoutedNet out;
  RCTreeBuilder b;
  std::size_t counter = 0;
  std::size_t steiner_counter = 0;

  const NodeId root = b.add_node(driver.name, kSource, options.driver_resistance, 0.0);
  std::vector<Attach> points{{driver.x, driver.y, root, driver.name}};

  std::vector<char> routed(sinks.size(), 0);
  out.sink_nodes.assign(sinks.size(), 0);

  for (std::size_t round = 0; round < sinks.size(); ++round) {
    // Prim step: the unrouted sink closest (L1) to any attachment point.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_sink = 0;
    std::size_t best_point = 0;
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      if (routed[s]) continue;
      for (std::size_t p = 0; p < points.size(); ++p) {
        const double d =
            std::abs(sinks[s].x - points[p].x) + std::abs(sinks[s].y - points[p].y);
        if (d < best) {
          best = d;
          best_sink = s;
          best_point = p;
        }
      }
    }

    const Pin& sink = sinks[best_sink];
    const Attach at = points[best_point];
    const double dx = std::abs(sink.x - at.x);
    const double dy = std::abs(sink.y - at.y);

    NodeId cursor = at.node;
    if (dx > 1e-9 && dy > 1e-9) {
      // L-shape: horizontal first; the corner becomes a shareable Steiner
      // candidate.
      const std::string corner_name = "steiner_" + std::to_string(steiner_counter++);
      cursor = add_run(b, cursor, dx, options, counter, corner_name, 0.0);
      if (options.steiner) points.push_back({sink.x, at.y, cursor, corner_name});
      cursor = add_run(b, cursor, dy, options, counter, sink.name, sink.load_cap);
    } else {
      cursor = add_run(b, cursor, dx + dy, options, counter, sink.name, sink.load_cap);
    }

    routed[best_sink] = 1;
    out.sink_nodes[best_sink] = cursor;
    points.push_back({sink.x, sink.y, cursor, sink.name});
    out.edges.push_back({at.name, sink.name, best});
    out.total_wirelength += best;
  }

  out.tree = std::move(b).build();
  return out;
}

}  // namespace rct::route
