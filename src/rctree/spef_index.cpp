#include "rctree/spef_index.hpp"

#include <cstring>

namespace rct::spef {
namespace {

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

inline char lower(char c) { return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32) : c; }

bool token_is(const char* token, std::uint8_t len, const char* keyword, std::uint8_t klen) {
  if (len != klen) return false;
  for (std::uint8_t i = 0; i < len; ++i)
    if (lower(token[i]) != keyword[i]) return false;
  return true;
}

}  // namespace

void Indexer::open_run(std::uint64_t offset, std::size_t line) {
  layout_.runs.push_back({offset, 0, line});
  layout_.chunks.push_back({false, static_cast<std::uint32_t>(layout_.runs.size() - 1)});
  in_run_ = true;
}

void Indexer::close_run(std::uint64_t end_offset) {
  if (!in_run_) return;
  layout_.runs.back().length = end_offset - layout_.runs.back().offset;
  in_run_ = false;
}

void Indexer::close_section(std::uint64_t end_offset, std::size_t finish_line, bool has_end) {
  Section& s = layout_.sections.back();
  s.length = end_offset - s.offset;
  s.end_line = finish_line;
  s.has_end = has_end;
  in_section_ = false;
}

void Indexer::line_complete(std::uint64_t line_start, std::uint64_t line_end) {
  ++line_;
  const bool is_dnet = token_is(token_, token_len_, "*d_net", 6);
  const bool is_end = token_is(token_, token_len_, "*end", 4);
  if (is_dnet) {
    if (in_section_)
      close_section(line_start, line_, /*has_end=*/false);
    else
      close_run(line_start);
    layout_.sections.push_back({line_start, 0, line_, 0, false});
    layout_.chunks.push_back({true, static_cast<std::uint32_t>(layout_.sections.size() - 1)});
    in_section_ = true;
  } else if (is_end && in_section_) {
    // The extent includes the *END line with its newline (when present).
    close_section(line_end, line_, /*has_end=*/true);
  } else if (!in_section_ && !in_run_) {
    open_run(line_start, line_);
  }
  token_len_ = 0;
  token_done_ = false;
  in_leading_ws_ = true;
}

void Indexer::feed(std::string_view chunk) {
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    // Once the first token is decided the rest of the line is opaque:
    // jump straight to the newline at memchr speed.
    if (token_done_) {
      const void* nl = std::memchr(chunk.data() + i, '\n', chunk.size() - i);
      if (nl == nullptr) {
        offset_ += chunk.size() - i;
        return;
      }
      const std::size_t skipped = static_cast<const char*>(nl) - (chunk.data() + i);
      offset_ += skipped;
      i += skipped;
    }
    const char c = chunk[i];
    if (c == '\n') {
      line_complete(line_start_, offset_ + 1);
      line_start_ = offset_ + 1;
    } else if (!token_done_) {
      if (in_leading_ws_) {
        if (is_space(c)) {
          ++offset_;
          continue;
        }
        in_leading_ws_ = false;
      }
      if (is_space(c)) {
        token_done_ = true;
      } else if (c == '/' && token_len_ > 0 && token_[token_len_ - 1] == '/') {
        --token_len_;  // the token ends where a `//` comment begins
        token_done_ = true;
      } else if (token_len_ < sizeof(token_)) {
        token_[token_len_++] = c;
      } else {
        token_done_ = true;  // longer than any keyword; cannot match
      }
    }
    ++offset_;
  }
}

Layout Indexer::finish() {
  if (finished_) return std::move(layout_);
  finished_ = true;
  const bool has_partial_line = offset_ > line_start_ || token_len_ > 0 || !in_leading_ws_;
  if (has_partial_line) line_complete(line_start_, offset_);
  // Legacy line accounting: a trailing newline yields a phantom final empty
  // line, so total lines == #newlines + 1 whenever the file is non-empty.
  layout_.lines = line_ + (has_partial_line ? 0 : 1);
  if (in_section_)
    close_section(offset_, layout_.lines, /*has_end=*/false);
  else
    close_run(offset_);
  layout_.bytes = offset_;
  return std::move(layout_);
}

Layout index_spef(std::string_view text) {
  Indexer indexer;
  indexer.feed(text);
  return indexer.finish();
}

}  // namespace rct::spef
