#pragma once
// Zero-copy read-only file input.  MappedFile mmap()s a regular file and
// exposes the bytes as a std::string_view, so a multi-GB SPEF deck is never
// copied into a std::string before parsing; pages stream in on demand and
// the kernel can drop clean ones under pressure.
//
// Non-regular inputs (pipes, sockets, /proc files, zero-length files — mmap
// of length 0 is an error) and any mmap failure fall back transparently to
// reading the bytes onto the heap: view() works the same either way, and
// mapped() says which path was taken.  The view stays valid for the
// lifetime of the MappedFile object; parsers that keep string_view slices
// into it (SpefFile node names do not — they copy) must keep it alive.

#include <cstdint>
#include <string>
#include <string_view>

namespace rct {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps (or, on fallback, reads) `path`.  Returns false and sets error()
  /// when the file cannot be opened or read; a failed object stays empty.
  bool open(const std::string& path);

  /// Unmaps / frees; the object returns to the empty state.
  void close();

  [[nodiscard]] std::string_view view() const { return {data_, size_}; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] bool ok() const { return data_ != nullptr || (opened_ && size_ == 0); }
  /// True when view() is an mmap of the file, false on the heap fallback.
  [[nodiscard]] bool mapped() const { return mapped_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool opened_ = false;  ///< open() succeeded (possibly on an empty file)
  std::string heap_;     ///< fallback storage when !mapped_
  std::string error_;
};

}  // namespace rct
