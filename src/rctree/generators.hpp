#pragma once
// Deterministic RC-tree topology generators for tests, property sweeps and
// benchmarks.  All generators are pure functions of their parameters (random
// trees are seeded), so every experiment is reproducible.

#include <cstdint>

#include "rctree/rctree.hpp"

namespace rct::gen {

/// Uniform RC line: driver resistance `r_driver`, then `segments` identical
/// R/C sections.  Node names: n1..n<segments+?>; the driver node is "n1".
/// segments >= 1.
[[nodiscard]] RCTree line(std::size_t segments, double r_driver, double c_driver,
                          double r_segment, double c_segment);

/// Balanced tree: a driver section followed by `depth` levels of uniform
/// `fanout`-way branching; every edge is one R/C section.
[[nodiscard]] RCTree balanced(std::size_t depth, std::size_t fanout, double r_driver,
                              double c_driver, double r_segment, double c_segment);

/// H-tree clock distribution model with `levels` binary splits.  Wire length
/// halves per level, so each level's segment has half the previous level's R
/// and C.  Sinks at the 2^levels leaves carry `c_sink`.
[[nodiscard]] RCTree htree(std::size_t levels, double r_level0, double c_level0, double c_sink);

/// Ranges for random_tree component values (log-uniform sampling).
struct RandomTreeOptions {
  double r_min = 10.0;     ///< ohms
  double r_max = 1000.0;   ///< ohms
  double c_min = 5e-15;    ///< farads
  double c_max = 500e-15;  ///< farads
  /// Bias of attachment point: 0 -> attach to most recent node (line-like),
  /// 1 -> attach uniformly at random (bushy).  In [0,1].
  double bushiness = 1.0;
};

/// Seeded random RC tree with `nodes` nodes.  Same (nodes, seed, options)
/// always yields the same tree.
[[nodiscard]] RCTree random_tree(std::size_t nodes, std::uint64_t seed,
                                 const RandomTreeOptions& options = {});

/// Star: a driver section feeding `arms` single-section branches.
[[nodiscard]] RCTree star(std::size_t arms, double r_driver, double c_driver, double r_arm,
                          double c_arm);

}  // namespace rct::gen
