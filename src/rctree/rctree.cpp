#include "rctree/rctree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "rctree/units.hpp"

namespace rct {

std::span<const NodeId> RCTree::children(NodeId i) const {
  return {child_list_.data() + child_offset_[i], child_offset_[i + 1] - child_offset_[i]};
}

std::span<const NodeId> RCTree::children_of_source() const {
  const std::size_t n = size();
  return {child_list_.data() + child_offset_[n], child_offset_[n + 1] - child_offset_[n]};
}

std::vector<NodeId> RCTree::leaves() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < size(); ++i)
    if (is_leaf(i)) out.push_back(i);
  return out;
}

std::size_t RCTree::depth(NodeId i) const {
  std::size_t d = 0;
  for (NodeId v = i; v != kSource; v = parent_[v]) ++d;
  return d;
}

double RCTree::path_resistance(NodeId i) const {
  double r = 0.0;
  for (NodeId v = i; v != kSource; v = parent_[v]) r += res_[v];
  return r;
}

double RCTree::total_capacitance() const {
  double c = 0.0;
  for (double v : cap_) c += v;
  return c;
}

double RCTree::subtree_capacitance(NodeId i) const {
  // Explicit stack: recursion would overflow on deep (100k+) chains.
  double c = 0.0;
  std::vector<NodeId> stack{i};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    c += cap_[v];
    for (NodeId ch : children(v)) stack.push_back(ch);
  }
  return c;
}

std::optional<NodeId> RCTree::find(std::string_view name) const {
  for (NodeId i = 0; i < size(); ++i)
    if (name_[i] == name) return i;
  return std::nullopt;
}

NodeId RCTree::at(std::string_view name) const {
  if (auto id = find(name)) return *id;
  throw std::out_of_range("RCTree::at: no node named '" + std::string(name) + "'");
}

RCTree RCTree::scaled(double kr, double kc) const {
  if (kr <= 0.0 || kc < 0.0) throw std::invalid_argument("RCTree::scaled: bad scale factors");
  RCTree t = *this;
  for (double& r : t.res_) r *= kr;
  for (double& c : t.cap_) c *= kc;
  return t;
}

std::string RCTree::to_netlist(std::string_view title) const {
  std::ostringstream os;
  os << "* " << title << "\n";
  os << ".input in\n";
  for (NodeId i = 0; i < size(); ++i) {
    const std::string up = (parent_[i] == kSource) ? "in" : name_[parent_[i]];
    os << "R" << i + 1 << " " << up << " " << name_[i] << " " << format_engineering(res_[i])
       << "\n";
    os << "C" << i + 1 << " " << name_[i] << " 0 " << format_engineering(cap_[i]) << "\n";
  }
  os << ".end\n";
  return os.str();
}

NodeId RCTreeBuilder::add_node(std::string name, NodeId parent, double resistance,
                               double capacitance) {
  if (name.empty()) throw std::invalid_argument("RCTreeBuilder: empty node name");
  if (parent != kSource && parent >= parent_.size())
    throw std::invalid_argument("RCTreeBuilder: parent of '" + name + "' does not exist yet");
  if (!(resistance > 0.0))
    throw std::invalid_argument("RCTreeBuilder: resistance must be positive at '" + name + "'");
  if (capacitance < 0.0)
    throw std::invalid_argument("RCTreeBuilder: negative capacitance at '" + name + "'");
  if (!seen_names_.insert(name).second)
    throw std::invalid_argument("RCTreeBuilder: duplicate node name '" + name + "'");

  parent_.push_back(parent);
  res_.push_back(resistance);
  cap_.push_back(capacitance);
  name_.push_back(std::move(name));
  return parent_.size() - 1;
}

RCTree RCTreeBuilder::build() && {
  if (parent_.empty()) throw std::invalid_argument("RCTreeBuilder: empty tree");
  const std::size_t n = parent_.size();

  RCTree t;
  t.parent_ = std::move(parent_);
  t.res_ = std::move(res_);
  t.cap_ = std::move(cap_);
  t.name_ = std::move(name_);

  // Build CSR children lists; the source occupies virtual slot n.
  std::vector<std::size_t> count(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t slot = (t.parent_[i] == kSource) ? n : t.parent_[i];
    ++count[slot];
  }
  if (count[n] == 0) throw std::invalid_argument("RCTreeBuilder: no node attaches to the source");

  t.child_offset_.assign(n + 2, 0);
  for (std::size_t i = 0; i <= n; ++i) t.child_offset_[i + 1] = t.child_offset_[i] + count[i];
  t.child_list_.resize(n);
  std::vector<std::size_t> cursor(t.child_offset_.begin(), t.child_offset_.end() - 1);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t slot = (t.parent_[i] == kSource) ? n : t.parent_[i];
    t.child_list_[cursor[slot]++] = i;
  }
  return t;
}

}  // namespace rct
