#include "rctree/generators.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

namespace rct::gen {
namespace {

std::string node_name(std::size_t i) { return "n" + std::to_string(i + 1); }

}  // namespace

RCTree line(std::size_t segments, double r_driver, double c_driver, double r_segment,
            double c_segment) {
  if (segments < 1) throw std::invalid_argument("gen::line: segments must be >= 1");
  RCTreeBuilder b;
  NodeId prev = b.add_node(node_name(0), kSource, r_driver, c_driver);
  for (std::size_t i = 1; i <= segments; ++i)
    prev = b.add_node(node_name(i), prev, r_segment, c_segment);
  return std::move(b).build();
}

RCTree balanced(std::size_t depth, std::size_t fanout, double r_driver, double c_driver,
                double r_segment, double c_segment) {
  if (fanout < 1) throw std::invalid_argument("gen::balanced: fanout must be >= 1");
  RCTreeBuilder b;
  std::size_t counter = 0;
  std::vector<NodeId> level{b.add_node(node_name(counter++), kSource, r_driver, c_driver)};
  for (std::size_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    next.reserve(level.size() * fanout);
    for (NodeId p : level)
      for (std::size_t f = 0; f < fanout; ++f)
        next.push_back(b.add_node(node_name(counter++), p, r_segment, c_segment));
    level = std::move(next);
  }
  return std::move(b).build();
}

RCTree htree(std::size_t levels, double r_level0, double c_level0, double c_sink) {
  RCTreeBuilder b;
  std::size_t counter = 0;
  std::vector<NodeId> level{b.add_node(node_name(counter++), kSource, r_level0, c_level0)};
  double r = r_level0;
  double c = c_level0;
  for (std::size_t d = 0; d < levels; ++d) {
    r *= 0.5;
    c *= 0.5;
    const bool last = (d + 1 == levels);
    std::vector<NodeId> next;
    next.reserve(level.size() * 2);
    for (NodeId p : level)
      for (int f = 0; f < 2; ++f)
        next.push_back(b.add_node(node_name(counter++), p, r, c + (last ? c_sink : 0.0)));
    level = std::move(next);
  }
  return std::move(b).build();
}

RCTree random_tree(std::size_t nodes, std::uint64_t seed, const RandomTreeOptions& options) {
  if (nodes < 1) throw std::invalid_argument("gen::random_tree: nodes must be >= 1");
  if (options.bushiness < 0.0 || options.bushiness > 1.0)
    throw std::invalid_argument("gen::random_tree: bushiness must be in [0,1]");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  auto log_uniform = [&](double lo, double hi) {
    return lo * std::exp(uni(rng) * std::log(hi / lo));
  };

  RCTreeBuilder b;
  b.add_node(node_name(0), kSource, log_uniform(options.r_min, options.r_max),
             log_uniform(options.c_min, options.c_max));
  for (std::size_t i = 1; i < nodes; ++i) {
    NodeId parent;
    if (uni(rng) < options.bushiness) {
      parent = static_cast<NodeId>(std::min<std::size_t>(
          i - 1, static_cast<std::size_t>(uni(rng) * static_cast<double>(i))));
    } else {
      parent = i - 1;
    }
    b.add_node(node_name(i), parent, log_uniform(options.r_min, options.r_max),
               log_uniform(options.c_min, options.c_max));
  }
  return std::move(b).build();
}

RCTree star(std::size_t arms, double r_driver, double c_driver, double r_arm, double c_arm) {
  if (arms < 1) throw std::invalid_argument("gen::star: arms must be >= 1");
  RCTreeBuilder b;
  const NodeId hub = b.add_node("hub", kSource, r_driver, c_driver);
  for (std::size_t i = 0; i < arms; ++i)
    b.add_node("arm" + std::to_string(i + 1), hub, r_arm, c_arm);
  return std::move(b).build();
}

}  // namespace rct::gen
