#pragma once
// SPEF-lite: reader/writer for a practical subset of the IEEE 1481 Standard
// Parasitic Exchange Format — the format production parasitic extractors
// emit and production timers consume.  Supporting it makes the toolkit a
// drop-in analysis backend for real extracted nets.
//
// Supported subset (one *D_NET per net):
//
//   *SPEF "IEEE 1481-1998"      (header lines up to the first *D_NET kept
//   *DESIGN "name"               as opaque metadata)
//   *T_UNIT 1 NS  *C_UNIT 1 PF  *R_UNIT 1 OHM
//   *D_NET netname total_cap
//   *CONN
//   *P port_name I|O            (the driving port is the tree source)
//   *I pin_name I|O
//   *CAP
//   idx node cap
//   *RES
//   idx nodeA nodeB res
//   *END
//
// Unsupported constructs (coupling caps `node1 node2 cap` inside *CAP,
// *INDUC, name maps) raise SpefError — a robust::Error carrying a typed
// code plus the file path and 1-based line number.
//
// Two parse modes (SpefParseOptions):
//   strict  (default) — the first defect throws SpefError.
//   lenient           — defects become robust::Diagnostic records on the
//     returned SpefFile and the parser recovers: a malformed *D_NET section
//     is skipped whole, a negative finite capacitance is clamped to 0F
//     (repair), a load pin missing from the parasitics is dropped, and
//     non-finite or non-positive resistances reject just that net.  Good
//     nets always survive bad siblings.

#include <string>
#include <string_view>
#include <vector>

#include "rctree/rctree.hpp"
#include "robust/error.hpp"

namespace rct {

/// Error raised on malformed or unsupported SPEF text (strict mode).
struct SpefError : robust::Error {
  using robust::Error::Error;
  /// Pre-taxonomy convenience: a bare message is a syntax error.
  explicit SpefError(const std::string& message)
      : robust::Error(robust::Code::kSyntax, message, {}, "spef") {}
};

/// One parasitic net parsed from SPEF.
struct SpefNet {
  std::string name;
  RCTree tree;
  std::string driver;             ///< node name of the driving port
  std::vector<NodeId> loads;      ///< ids of *I load pins
};

/// A parsed SPEF file.
struct SpefFile {
  std::string design;
  double time_unit = 1e-9;        ///< seconds per SPEF time unit
  double cap_unit = 1e-12;        ///< farads per SPEF cap unit
  double res_unit = 1.0;          ///< ohms per SPEF res unit
  std::vector<SpefNet> nets;
  /// Lenient mode only: every recovered defect, in input order (strict
  /// parses throw at the first one instead).
  std::vector<robust::Diagnostic> diagnostics;
  /// Lenient mode only: *D_NET sections dropped whole because of defects.
  std::size_t nets_rejected = 0;
};

/// Parse-mode knobs.
struct SpefParseOptions {
  bool lenient = false;  ///< collect diagnostics + recover instead of throwing
  std::string path;      ///< source file for error locations ("" = in-memory)
};

/// Parses SPEF text.  Strict mode throws SpefError (typed code, 1-based
/// line) on malformed input; lenient mode records diagnostics and recovers.
[[nodiscard]] SpefFile parse_spef(std::string_view text, const SpefParseOptions& options);
[[nodiscard]] SpefFile parse_spef(std::string_view text);

/// Parses a SPEF file from disk; errors and diagnostics carry `path`.
[[nodiscard]] SpefFile parse_spef_file(const std::string& path,
                                       const SpefParseOptions& options);
[[nodiscard]] SpefFile parse_spef_file(const std::string& path);

/// Serializes nets back to SPEF-lite (units: NS / PF / OHM).
[[nodiscard]] std::string write_spef(const SpefFile& file);

/// Convenience: wraps one RCTree as a single-net SpefFile.
[[nodiscard]] SpefFile spef_from_tree(const RCTree& tree, std::string net_name,
                                      std::string design = "rct");

}  // namespace rct
