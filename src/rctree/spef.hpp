#pragma once
// SPEF-lite: reader/writer for a practical subset of the IEEE 1481 Standard
// Parasitic Exchange Format — the format production parasitic extractors
// emit and production timers consume.  Supporting it makes the toolkit a
// drop-in analysis backend for real extracted nets.
//
// Supported subset (one *D_NET per net):
//
//   *SPEF "IEEE 1481-1998"      (header lines up to the first *D_NET kept
//   *DESIGN "name"               as opaque metadata)
//   *T_UNIT 1 NS  *C_UNIT 1 PF  *R_UNIT 1 OHM
//   *D_NET netname total_cap
//   *CONN
//   *P port_name I|O            (the driving port is the tree source)
//   *I pin_name I|O
//   *CAP
//   idx node cap
//   *RES
//   idx nodeA nodeB res
//   *END
//
// Unsupported constructs (coupling caps `node1 node2 cap` inside *CAP,
// *INDUC, name maps) raise SpefError with the line number.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rctree/rctree.hpp"

namespace rct {

/// Error raised on malformed or unsupported SPEF text.
struct SpefError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One parasitic net parsed from SPEF.
struct SpefNet {
  std::string name;
  RCTree tree;
  std::string driver;             ///< node name of the driving port
  std::vector<NodeId> loads;      ///< ids of *I load pins
};

/// A parsed SPEF file.
struct SpefFile {
  std::string design;
  double time_unit = 1e-9;        ///< seconds per SPEF time unit
  double cap_unit = 1e-12;        ///< farads per SPEF cap unit
  double res_unit = 1.0;          ///< ohms per SPEF res unit
  std::vector<SpefNet> nets;
};

/// Parses SPEF text.  Throws SpefError with a 1-based line number on
/// malformed input.
[[nodiscard]] SpefFile parse_spef(std::string_view text);

/// Parses a SPEF file from disk.
[[nodiscard]] SpefFile parse_spef_file(const std::string& path);

/// Serializes nets back to SPEF-lite (units: NS / PF / OHM).
[[nodiscard]] std::string write_spef(const SpefFile& file);

/// Convenience: wraps one RCTree as a single-net SpefFile.
[[nodiscard]] SpefFile spef_from_tree(const RCTree& tree, std::string net_name,
                                      std::string design = "rct");

}  // namespace rct
