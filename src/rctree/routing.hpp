#pragma once
// From pin geometry to an RC tree — the paper's motivating use case:
// "It is used during logic synthesis to estimate wiring delays for
// approximate Steiner or spanning tree routes."
//
// Given a driver pin and sink pins in the plane, build a rectilinear
// spanning tree (Prim, L1 metric, optionally allowing connections to
// points along existing edges — a cheap Steiner refinement), route each
// connection as an L-shape, and expand every wire into per-unit-length RC
// segments.  The result is an ordinary RCTree, so the whole bound/metric
// machinery applies to candidate routes during placement.

#include <cstddef>
#include <string>
#include <vector>

#include "rctree/rctree.hpp"
#include "rctree/transform.hpp"

namespace rct::route {

/// A pin in layout coordinates (microns).
struct Pin {
  std::string name;
  double x;
  double y;
  double load_cap = 0.0;  ///< receiver input capacitance (0 for the driver)
};

/// Routing configuration.
struct RouteOptions {
  WireParams wire{0.4, 0.18e-15};  ///< per-um resistance/capacitance
  double driver_resistance = 500.0;
  std::size_t segments_per_100um = 2;  ///< RC discretization density
  /// Allow attaching a new pin to the closest point of an already-routed
  /// L-shape (Steiner-like sharing) instead of only to pin locations.
  bool steiner = true;
};

/// One routed connection (for reporting / display).
struct RoutedEdge {
  std::string from;   ///< existing tree point (pin name or "steiner_k")
  std::string to;     ///< newly attached pin
  double length;      ///< rectilinear length (um)
};

/// A routed net: the RC tree plus geometry metadata.
struct RoutedNet {
  RCTree tree;                     ///< driver resistance at the root
  std::vector<NodeId> sink_nodes;  ///< tree ids of the sink pins, input order
  std::vector<RoutedEdge> edges;
  double total_wirelength = 0.0;   ///< um
};

/// Routes `sinks` from `driver`.  Throws std::invalid_argument on empty
/// sinks, duplicate names, or non-positive parameters.
[[nodiscard]] RoutedNet route_net(const Pin& driver, const std::vector<Pin>& sinks,
                                  const RouteOptions& options = {});

/// Total rectilinear (L1) distance between two pins.
[[nodiscard]] inline double manhattan(const Pin& a, const Pin& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace rct::route
