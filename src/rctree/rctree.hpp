#pragma once
// The RC-tree circuit model of Penfield-Rubinstein / Gupta-Tutuianu-Pileggi:
// an ideal voltage source drives a tree of resistors; every non-source node
// carries a capacitor to ground; there are no resistors to ground and no
// floating capacitors.
//
// Representation: nodes are indexed 0..size()-1 in topological order
// (parents precede children).  Each node stores the resistance of the edge
// to its parent and its grounded capacitance.  The source is implicit: a
// node whose parent is kSource hangs directly off the ideal input source.

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rct {

/// Index of a node within an RCTree.
using NodeId = std::size_t;

/// Sentinel parent id: the node attaches directly to the input source.
inline constexpr NodeId kSource = std::numeric_limits<NodeId>::max();

class RCTreeBuilder;

/// Immutable RC tree.  Construct via RCTreeBuilder.
class RCTree {
 public:
  /// Constructs an empty tree (useful as a placeholder; most accessors
  /// require a non-empty tree built via RCTreeBuilder).
  RCTree() = default;

  [[nodiscard]] std::size_t size() const { return res_.size(); }
  [[nodiscard]] bool empty() const { return res_.empty(); }

  /// Parent node id, or kSource for nodes attached to the input source.
  [[nodiscard]] NodeId parent(NodeId i) const { return parent_[i]; }
  /// Resistance (ohms) of the edge from node i to its parent.
  [[nodiscard]] double resistance(NodeId i) const { return res_[i]; }
  /// Grounded capacitance (farads) at node i.
  [[nodiscard]] double capacitance(NodeId i) const { return cap_[i]; }
  [[nodiscard]] const std::string& name(NodeId i) const { return name_[i]; }

  /// Children of node i (use children_of_source() for the roots).
  [[nodiscard]] std::span<const NodeId> children(NodeId i) const;
  /// Nodes attached directly to the input source.
  [[nodiscard]] std::span<const NodeId> children_of_source() const;

  [[nodiscard]] bool is_leaf(NodeId i) const { return children(i).empty(); }
  /// All leaf node ids, ascending.
  [[nodiscard]] std::vector<NodeId> leaves() const;

  /// Number of resistive edges between the source and node i (>= 1).
  /// Cost: O(depth) parent walk per call — per-node loops over a whole tree
  /// should read analysis::TreeContext::depths() instead.
  [[nodiscard]] std::size_t depth(NodeId i) const;
  /// Total resistance of the source->i path (R_ii in the paper's notation).
  /// Cost: O(depth) parent walk per call — use
  /// analysis::TreeContext::path_resistances() in loops.
  [[nodiscard]] double path_resistance(NodeId i) const;
  /// Sum of all capacitances in the tree.
  [[nodiscard]] double total_capacitance() const;
  /// Sum of capacitances in the subtree rooted at i (including i).
  /// Cost: O(subtree) DFS per call — use
  /// analysis::TreeContext::subtree_capacitances() in loops.
  [[nodiscard]] double subtree_capacitance(NodeId i) const;

  /// Node lookup by name; nullopt when absent.
  [[nodiscard]] std::optional<NodeId> find(std::string_view name) const;
  /// Node lookup by name; throws std::out_of_range when absent.
  [[nodiscard]] NodeId at(std::string_view name) const;

  /// Returns a copy with every resistance scaled by kr and capacitance by kc.
  /// (All Elmore-family metrics scale by kr*kc.)
  [[nodiscard]] RCTree scaled(double kr, double kc) const;

  /// Renders the tree as a netlist deck understood by parse_netlist().
  [[nodiscard]] std::string to_netlist(std::string_view title = "rct tree") const;

 private:
  friend class RCTreeBuilder;

  std::vector<NodeId> parent_;
  std::vector<double> res_;
  std::vector<double> cap_;
  std::vector<std::string> name_;
  // CSR-style children adjacency; roots (children of source) stored first.
  std::vector<std::size_t> child_offset_;  // size()+2 entries; slot size() = source
  std::vector<NodeId> child_list_;
};

/// Incremental RC-tree construction with validation.
///
/// Nodes must be added parent-first; the builder enforces positive
/// resistance, non-negative capacitance and unique non-empty names.
class RCTreeBuilder {
 public:
  /// Adds a node and returns its id.  `parent` is a previously returned id
  /// or kSource.  Throws std::invalid_argument on constraint violations.
  NodeId add_node(std::string name, NodeId parent, double resistance, double capacitance);

  /// Validation-free fast path for callers whose construction already
  /// proves the invariants (graph_builder's BFS: names are unique and
  /// non-empty, parents precede children, values are pre-validated).
  /// Mixing with add_node() on the same builder is not supported: this
  /// path does not register names for duplicate detection.
  NodeId add_node_unchecked(std::string name, NodeId parent, double resistance,
                            double capacitance) {
    parent_.push_back(parent);
    res_.push_back(resistance);
    cap_.push_back(capacitance);
    name_.push_back(std::move(name));
    return parent_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Finalizes the tree.  Throws std::invalid_argument if empty or if no
  /// node attaches to the source.
  [[nodiscard]] RCTree build() &&;

 private:
  std::vector<NodeId> parent_;
  std::vector<double> res_;
  std::vector<double> cap_;
  std::vector<std::string> name_;
  std::unordered_set<std::string> seen_names_;  // O(1) duplicate detection
};

}  // namespace rct
