#pragma once
// Bump (arena) allocator for parser scratch: node-name tables, adjacency
// arrays and per-net element lists live for exactly one parse and are freed
// wholesale, so a pointer-bump over geometrically growing blocks replaces a
// malloc/free pair per token.  reset() rewinds to the first block without
// releasing it, so a parser that loops over many *D_NET sections reuses one
// warm allocation.
//
// ArenaAllocator<T> adapts an Arena to the std allocator interface so
// std::vector / std::unordered_map scratch can live in the arena too.
// deallocate() is a no-op by design: geometric container growth wastes at
// most the live size again, and everything dies at reset().  Arena is not
// thread-safe; parallel parse tasks each own one.

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

namespace rct {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : first_block_bytes_(first_block_bytes == 0 ? 1 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (block_ < blocks_.size()) {
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + bytes <= blocks_[block_].size) {
        offset_ = aligned + bytes;
        return blocks_[block_].data.get() + aligned;
      }
      // Try later blocks kept alive by a previous reset() before growing.
      while (block_ + 1 < blocks_.size()) {
        ++block_;
        offset_ = 0;
        if (bytes <= blocks_[block_].size) {
          offset_ = bytes;
          return blocks_[block_].data.get();
        }
      }
    }
    const std::size_t last = blocks_.empty() ? first_block_bytes_ / 2 : blocks_.back().size;
    const std::size_t size = std::max(bytes, std::max(first_block_bytes_, last * 2));
    blocks_.push_back({std::unique_ptr<char[]>(new char[size]), size});
    block_ = blocks_.size() - 1;
    offset_ = bytes;
    return blocks_.back().data.get();
  }

  /// Copies `s` into the arena; the view stays valid until reset().
  std::string_view intern(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Rewinds to empty, keeping every block for reuse.
  void reset() {
    block_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// Total capacity held (allocated from the system), for tests/metrics.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size;
  };

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< block currently bumping
  std::size_t offset_ = 0;  ///< bump offset within blocks_[block_]
};

/// std-allocator adapter over a borrowed Arena (which must outlive every
/// container using it).
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // freed wholesale at Arena::reset()

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace rct
