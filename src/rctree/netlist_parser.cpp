#include "rctree/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "rctree/graph_builder.hpp"
#include "rctree/units.hpp"

namespace rct {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool is_ground(std::string_view n) {
  const std::string low = to_lower(n);
  return low == "0" || low == "gnd" || low == "vss";
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::istringstream is{std::string(line)};
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

struct Resistor {
  std::string a;
  std::string b;
  double value;
  std::size_t line;
};

struct Capacitor {
  std::string node;
  double value;
  std::size_t line;
};

ParsedNetlist parse_netlist_impl(std::string_view text, const std::string& path) {
  const auto fail = [&path](std::size_t line_no, robust::Code code,
                            const std::string& msg) -> void {
    throw NetlistError(code, msg, {path, line_no}, "netlist");
  };

  std::vector<Resistor> resistors;
  std::vector<Capacitor> capacitors;
  std::string input_node;
  std::vector<std::string> probe_names;
  ParsedNetlist out;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                          : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments: full-line '*' or trailing ';'.
    if (!line.empty() && line.front() == '*') continue;
    if (const auto semi = line.find(';'); semi != std::string_view::npos)
      line = line.substr(0, semi);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    const std::string head = to_lower(toks[0]);
    if (head == ".end") break;
    if (head == ".title") {
      std::string title;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        if (i > 1) title += ' ';
        title += toks[i];
      }
      out.title = title;
      continue;
    }
    if (head == ".input") {
      if (toks.size() != 2)
        fail(line_no, robust::Code::kSyntax, ".input requires exactly one node");
      if (!input_node.empty())
        fail(line_no, robust::Code::kSyntax, "duplicate .input directive");
      input_node = toks[1];
      continue;
    }
    if (head == ".probe") {
      if (toks.size() != 2)
        fail(line_no, robust::Code::kSyntax, ".probe requires exactly one node");
      probe_names.push_back(toks[1]);
      continue;
    }
    if (head[0] == '.')
      fail(line_no, robust::Code::kSyntax, "unknown directive '" + toks[0] + "'");

    if (head[0] == 'r') {
      if (toks.size() != 4)
        fail(line_no, robust::Code::kSyntax, "resistor requires: Rname nodeA nodeB value");
      const auto v = parse_engineering(toks[3]);
      if (!v || *v <= 0.0)
        fail(line_no, robust::Code::kBadNumber, "bad resistor value '" + toks[3] + "'");
      if (is_ground(toks[1]) || is_ground(toks[2]))
        fail(line_no, robust::Code::kNonPhysicalValue, "RC trees admit no resistors to ground");
      if (toks[1] == toks[2])
        fail(line_no, robust::Code::kDuplicateNode, "resistor shorts a node to itself");
      resistors.push_back({toks[1], toks[2], *v, line_no});
      continue;
    }
    if (head[0] == 'c') {
      if (toks.size() != 4)
        fail(line_no, robust::Code::kSyntax, "capacitor requires: Cname node 0 value");
      const auto v = parse_engineering(toks[3]);
      if (!v || *v < 0.0)
        fail(line_no, robust::Code::kBadNumber, "bad capacitor value '" + toks[3] + "'");
      const bool g1 = is_ground(toks[1]);
      const bool g2 = is_ground(toks[2]);
      if (g1 == g2)
        fail(line_no, robust::Code::kNonPhysicalValue,
             "capacitor must connect a node to ground");
      capacitors.push_back({g1 ? toks[2] : toks[1], *v, line_no});
      continue;
    }
    fail(line_no, robust::Code::kSyntax, "unrecognized statement '" + toks[0] + "'");
  }

  if (input_node.empty())
    throw NetlistError(robust::Code::kNoDriver, "missing .input directive", {path, 0},
                       "netlist");

  std::vector<detail::ResistorEdge> edges;
  edges.reserve(resistors.size());
  for (const Resistor& r : resistors) edges.push_back({r.a, r.b, r.value, r.line});
  std::map<std::string, double> cap_at;
  for (const auto& c : capacitors) cap_at[c.node] += c.value;

  detail::BuiltTree built;
  try {
    built = detail::build_tree_from_elements(edges, std::move(cap_at), input_node);
  } catch (const detail::GraphBuildError& e) {
    throw NetlistError(e.code, e.what(), {path, e.tag}, "netlist");
  }
  out.tree = std::move(built.tree);
  for (std::string& w : built.warnings) out.warnings.push_back(std::move(w));
  for (const std::string& p : probe_names) {
    const auto id = out.tree.find(p);
    if (!id)
      throw NetlistError(robust::Code::kDanglingLoad,
                         ".probe node '" + p + "' does not exist", {path, 0}, "netlist");
    out.probes.push_back(*id);
  }
  return out;
}

}  // namespace

ParsedNetlist parse_netlist(std::string_view text) { return parse_netlist_impl(text, ""); }

ParsedNetlist parse_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw NetlistError(robust::Code::kFileOpen, "cannot open '" + path + "'", {path, 0},
                       "netlist");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_netlist_impl(ss.str(), path);
}

}  // namespace rct
