#include "rctree/circuits.hpp"

namespace rct::circuits {

// Component values calibrated by tools/fit_fig1 against the published
// Table I metrics (the paper omits them); see EXPERIMENTS.md for the fit
// residuals (every Table I entry is reproduced within ~1%).
RCTree fig1() {
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, 889.27, 18.79e-15);
  const NodeId n2 = b.add_node("n2", n1, 637.49, 67.22e-15);
  const NodeId n3 = b.add_node("n3", n2, 87.36, 195.52e-15);
  const NodeId n4 = b.add_node("n4", n3, 1863.05, 143.14e-15);
  b.add_node("n5", n4, 100.27, 33.17e-15);
  const NodeId n6 = b.add_node("n6", n1, 1203.43, 131.48e-15);
  b.add_node("n7", n6, 192.59, 30.53e-15);
  return std::move(b).build();
}

std::array<NodeId, 3> fig1_observed(const RCTree& t) {
  return {t.at("n1"), t.at("n5"), t.at("n7")};
}

// Calibrated so that the Elmore delays at A/B/C match Table II's published
// 0.02 / 1.13 / 1.56 ns; see tools/fit_fig1.
RCTree tree25() {
  RCTreeBuilder b;
  // Driver section: node A sits right behind a small driver resistance.
  NodeId prev = b.add_node("A", kSource, 10.0, 166.1e-15);
  // Main line m1..m15 (m8 named "B"), then leaf C.
  const double r_seg = 98.44;
  const double c_seg = 109.6e-15;
  std::vector<NodeId> main_line;
  for (int i = 1; i <= 15; ++i) {
    std::string name = (i == 8) ? "B" : ("m" + std::to_string(i));
    prev = b.add_node(std::move(name), prev, r_seg, c_seg);
    main_line.push_back(prev);
  }
  b.add_node("C", prev, r_seg, c_seg);
  // Side branches at m3 and m11 (4 nodes each) make it a genuine tree.
  NodeId s = main_line[2];
  for (int i = 1; i <= 4; ++i) s = b.add_node("p" + std::to_string(i), s, r_seg, 10.0e-15);
  s = main_line[10];
  for (int i = 1; i <= 4; ++i) s = b.add_node("q" + std::to_string(i), s, r_seg, 10.0e-15);
  return std::move(b).build();
}

std::array<NodeId, 3> tree25_observed(const RCTree& t) {
  return {t.at("A"), t.at("B"), t.at("C")};
}

std::array<Table1Row, 3> table1_published() {
  constexpr double ns = 1e-9;
  return {{
      {"C1", 0.196 * ns, 0.55 * ns, 0.0, 0.383 * ns, 0.55 * ns, 0.0},
      {"C5", 0.919 * ns, 1.20 * ns, 0.2 * ns, 0.830 * ns, 1.32 * ns, 0.51 * ns},
      {"C7", 0.450 * ns, 0.75 * ns, 0.0, 0.524 * ns, 1.02 * ns, 0.054 * ns},
  }};
}

std::array<Table2Row, 3> table2_published() {
  constexpr double ns = 1e-9;
  constexpr double ps = 1e-12;
  return {{
      {"A", 0.02 * ns, 0.01 * ns, 1.04, 18.0 * ps, 0.119, 19.0 * ps, 0.0154},
      {"B", 1.13 * ns, 0.72 * ns, 0.547, 1.06 * ns, 0.065, 1.116 * ns, 0.0086},
      {"C", 1.56 * ns, 1.20 * ns, 0.296, 1.48 * ns, 0.048, 1.547 * ns, 0.0064},
  }};
}

}  // namespace rct::circuits
