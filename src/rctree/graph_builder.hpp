#pragma once
// Shared element-graph -> RCTree construction used by both netlist and SPEF
// parsers: BFS from the driving node over resistor edges, consuming each
// resistor once, validating tree-ness (no loops, nothing disconnected, all
// capacitors grounded on tree nodes).

#include <cstddef>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rctree/arena.hpp"
#include "rctree/rctree.hpp"
#include "robust/error.hpp"

namespace rct::detail {

/// A two-terminal resistor between named nodes.  `tag` is an opaque caller
/// token (source line number) echoed in errors.
struct ResistorEdge {
  std::string a;
  std::string b;
  double value;
  std::size_t tag;
};

/// Raised when the element graph is not a tree rooted at the input node.
/// `tag` is the offending resistor's tag, or 0 for global problems; `code`
/// is the topology code the caller folds into its own typed error.
struct GraphBuildError : std::runtime_error {
  GraphBuildError(const std::string& msg, std::size_t tag_in,
                  robust::Code code_in = robust::Code::kDisconnected)
      : std::runtime_error(msg), tag(tag_in), code(code_in) {}
  std::size_t tag;
  robust::Code code;
};

/// Result of tree construction.
struct BuiltTree {
  RCTree tree;
  std::vector<std::string> warnings;  ///< capless nodes, ignored input cap
};

/// Builds the RC tree rooted at `input_node`.  `cap_at` maps node name ->
/// total grounded capacitance (consumed; a cap on the input node is dropped
/// with a warning; leftover caps on unknown nodes are an error).
[[nodiscard]] BuiltTree build_tree_from_elements(const std::vector<ResistorEdge>& resistors,
                                                 std::map<std::string, double> cap_at,
                                                 const std::string& input_node);

struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Arena-backed name -> value scratch map (node links die at Arena::reset()).
template <class V>
using ArenaSvMap = std::unordered_map<std::string_view, V, SvHash, std::equal_to<>,
                                      ArenaAllocator<std::pair<const std::string_view, V>>>;

/// Sentinel for "input node never mentioned in the parasitics".
inline constexpr std::uint32_t kNoDenseNode = 0xffffffffu;

/// A resistor between dense node ids (see DenseElements).
struct DenseResistor {
  std::uint32_t a;
  std::uint32_t b;
  double value;
  std::size_t tag;  ///< opaque caller token (source line) echoed in errors
};

/// Element graph with node names already interned to dense ids
/// 0..names.size()-1 by the caller (the SPEF shard parser), so tree
/// construction does no hashing at all.  `caps[i]` / `has_cap[i]` carry the
/// accumulated grounded capacitance at node i; names are views into the
/// parse buffer.
struct DenseElements {
  std::span<const std::string_view> names;
  std::span<const DenseResistor> resistors;
  std::span<const double> caps;
  std::span<const unsigned char> has_cap;
};

/// Zero-copy construction used by the SPEF section parsers: same traversal
/// order, warnings and error messages as the std::string overload, but all
/// intermediate topology state (CSR adjacency, BFS frontier, visit flags)
/// lives in `arena`.  `input` is the dense id of the driving node, or
/// kNoDenseNode when it never appeared (reported as "touches no resistor",
/// with `input_name` in the message).  Only the returned BuiltTree owns
/// heap memory.
[[nodiscard]] BuiltTree build_tree_from_dense(const DenseElements& elements,
                                              std::uint32_t input,
                                              std::string_view input_name, Arena& arena);

}  // namespace rct::detail
