#pragma once
// Shared element-graph -> RCTree construction used by both netlist and SPEF
// parsers: BFS from the driving node over resistor edges, consuming each
// resistor once, validating tree-ness (no loops, nothing disconnected, all
// capacitors grounded on tree nodes).

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "rctree/rctree.hpp"
#include "robust/error.hpp"

namespace rct::detail {

/// A two-terminal resistor between named nodes.  `tag` is an opaque caller
/// token (source line number) echoed in errors.
struct ResistorEdge {
  std::string a;
  std::string b;
  double value;
  std::size_t tag;
};

/// Raised when the element graph is not a tree rooted at the input node.
/// `tag` is the offending resistor's tag, or 0 for global problems; `code`
/// is the topology code the caller folds into its own typed error.
struct GraphBuildError : std::runtime_error {
  GraphBuildError(const std::string& msg, std::size_t tag_in,
                  robust::Code code_in = robust::Code::kDisconnected)
      : std::runtime_error(msg), tag(tag_in), code(code_in) {}
  std::size_t tag;
  robust::Code code;
};

/// Result of tree construction.
struct BuiltTree {
  RCTree tree;
  std::vector<std::string> warnings;  ///< capless nodes, ignored input cap
};

/// Builds the RC tree rooted at `input_node`.  `cap_at` maps node name ->
/// total grounded capacitance (consumed; a cap on the input node is dropped
/// with a warning; leftover caps on unknown nodes are an error).
[[nodiscard]] BuiltTree build_tree_from_elements(const std::vector<ResistorEdge>& resistors,
                                                 std::map<std::string, double> cap_at,
                                                 const std::string& input_node);

}  // namespace rct::detail
