#include "rctree/transform.hpp"

#include <stdexcept>
#include <vector>

namespace rct {

RCTree merge_series(const RCTree& tree) {
  const std::size_t n = tree.size();
  // Accumulated resistance from each kept node up to its nearest kept
  // ancestor (or source).  A node is collapsed iff cap == 0 and exactly one
  // child and it is not needed as a branch point.
  std::vector<char> collapsed(n, 0);
  for (NodeId i = 0; i < n; ++i)
    collapsed[i] = (tree.capacitance(i) == 0.0 && tree.children(i).size() == 1) ? 1 : 0;

  RCTreeBuilder b;
  std::vector<NodeId> new_id(n, kSource);
  for (NodeId i = 0; i < n; ++i) {
    if (collapsed[i]) continue;
    // Walk up through collapsed ancestors, summing resistance.
    double res = tree.resistance(i);
    NodeId p = tree.parent(i);
    while (p != kSource && collapsed[p]) {
      res += tree.resistance(p);
      p = tree.parent(p);
    }
    const NodeId parent = (p == kSource) ? kSource : new_id[p];
    new_id[i] = b.add_node(tree.name(i), parent, res, tree.capacitance(i));
  }
  if (b.size() == 0) throw std::invalid_argument("merge_series: tree collapses to nothing");
  return std::move(b).build();
}

RCTree prune_subtree(const RCTree& tree, NodeId node, bool lump) {
  if (node >= tree.size()) throw std::invalid_argument("prune_subtree: node out of range");
  if (tree.parent(node) == kSource)
    throw std::invalid_argument("prune_subtree: cannot prune a root subtree");

  // Mark the subtree.
  std::vector<char> doomed(tree.size(), 0);
  doomed[node] = 1;
  for (NodeId i = node + 1; i < tree.size(); ++i) {
    const NodeId p = tree.parent(i);
    if (p != kSource && doomed[p]) doomed[i] = 1;
  }
  // Sum the lumped capacitance from the marks just computed instead of
  // paying RCTree::subtree_capacitance's separate O(subtree) DFS.
  double lumped = 0.0;
  if (lump)
    for (NodeId i = 0; i < tree.size(); ++i)
      if (doomed[i]) lumped += tree.capacitance(i);

  RCTreeBuilder b;
  std::vector<NodeId> new_id(tree.size(), kSource);
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (doomed[i]) continue;
    const NodeId p = tree.parent(i);
    const double extra = (i == tree.parent(node)) ? lumped : 0.0;
    new_id[i] = b.add_node(tree.name(i), p == kSource ? kSource : new_id[p],
                           tree.resistance(i), tree.capacitance(i) + extra);
  }
  return std::move(b).build();
}

RCTree add_cap(const RCTree& tree, NodeId node, double extra) {
  if (node >= tree.size()) throw std::invalid_argument("add_cap: node out of range");
  if (tree.capacitance(node) + extra < 0.0)
    throw std::invalid_argument("add_cap: capacitance would go negative");
  RCTreeBuilder b;
  for (NodeId i = 0; i < tree.size(); ++i)
    b.add_node(tree.name(i), tree.parent(i), tree.resistance(i),
               tree.capacitance(i) + (i == node ? extra : 0.0));
  return std::move(b).build();
}

RCTree segmented_wire(double length, const WireParams& params, std::size_t sections,
                      double driver_resistance, double load_cap) {
  if (!(length > 0.0) || sections < 1)
    throw std::invalid_argument("segmented_wire: need positive length and >= 1 section");
  if (!(params.res_per_length > 0.0) || !(params.cap_per_length >= 0.0))
    throw std::invalid_argument("segmented_wire: bad per-unit parameters");
  const double r_seg = params.res_per_length * length / static_cast<double>(sections);
  const double c_seg = params.cap_per_length * length / static_cast<double>(sections);
  RCTreeBuilder b;
  // Driver section carries half of the first segment's cap (pi split).
  NodeId prev = b.add_node("w1", kSource, driver_resistance + 0.5 * r_seg, c_seg);
  for (std::size_t i = 2; i <= sections; ++i)
    prev = b.add_node("w" + std::to_string(i), prev, r_seg, c_seg);
  b.add_node("load", prev, 0.5 * r_seg, load_cap);
  return std::move(b).build();
}

}  // namespace rct
