#include "rctree/graph_builder.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace rct::detail {

BuiltTree build_tree_from_elements(const std::vector<ResistorEdge>& resistors,
                                   std::map<std::string, double> cap_at,
                                   const std::string& input_node) {
  if (resistors.empty()) throw GraphBuildError("no resistors", 0, robust::Code::kEmptyTree);

  std::map<std::string, std::vector<std::size_t>> adj;
  for (std::size_t i = 0; i < resistors.size(); ++i) {
    adj[resistors[i].a].push_back(i);
    adj[resistors[i].b].push_back(i);
  }
  if (!adj.contains(input_node))
    throw GraphBuildError("input node '" + input_node + "' touches no resistor", 0,
                          robust::Code::kDisconnected);

  BuiltTree out;
  if (const auto it = cap_at.find(input_node); it != cap_at.end()) {
    out.warnings.push_back("capacitor on input node '" + input_node +
                           "' ignored (node is clamped by the ideal source)");
    cap_at.erase(it);
  }

  RCTreeBuilder builder;
  std::map<std::string, NodeId> id_of;
  std::vector<char> used(resistors.size(), 0);
  std::vector<std::string> frontier{input_node};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& u : frontier) {
      for (std::size_t ri : adj[u]) {
        if (used[ri]) continue;
        used[ri] = 1;
        const ResistorEdge& r = resistors[ri];
        const std::string& v = (r.a == u) ? r.b : r.a;
        if (id_of.contains(v) || v == input_node)
          throw GraphBuildError("resistor closes a loop at node '" + v + "' (not a tree)",
                                r.tag, robust::Code::kCycle);
        const NodeId parent = (u == input_node) ? kSource : id_of.at(u);
        double cap = 0.0;
        if (const auto it = cap_at.find(v); it != cap_at.end()) {
          cap = it->second;
          cap_at.erase(it);
        } else {
          out.warnings.push_back("node '" + v + "' has no capacitor; using 0F");
        }
        id_of[v] = builder.add_node(v, parent, r.value, cap);
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }

  for (std::size_t i = 0; i < resistors.size(); ++i)
    if (!used[i])
      throw GraphBuildError("resistor is disconnected from the input node", resistors[i].tag,
                            robust::Code::kDisconnected);
  if (!cap_at.empty())
    throw GraphBuildError(
        "capacitor at node '" + cap_at.begin()->first + "' is not connected to the tree", 0,
        robust::Code::kDisconnected);

  out.tree = std::move(builder).build();
  return out;
}

BuiltTree build_tree_from_dense(const DenseElements& elements, std::uint32_t input,
                                std::string_view input_name, Arena& arena) {
  const std::span<const DenseResistor> resistors = elements.resistors;
  if (resistors.empty()) throw GraphBuildError("no resistors", 0, robust::Code::kEmptyTree);

  // CSR adjacency: per-node resistor indices, ascending (the fill loop runs
  // in ascending resistor order, matching the legacy push_back order).
  const std::size_t n = elements.names.size();
  using U32Vec = std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>>;
  U32Vec off{ArenaAllocator<std::uint32_t>{arena}};
  off.assign(n + 1, 0);
  for (const DenseResistor& r : resistors) {
    ++off[r.a + 1];
    ++off[r.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) off[i + 1] += off[i];
  if (input == kNoDenseNode || off[input + 1] == off[input])
    throw GraphBuildError("input node '" + std::string(input_name) + "' touches no resistor",
                          0, robust::Code::kDisconnected);
  U32Vec adj{ArenaAllocator<std::uint32_t>{arena}};
  adj.assign(2 * resistors.size(), 0);
  U32Vec cur{off.begin(), off.end() - 1, ArenaAllocator<std::uint32_t>{arena}};
  for (std::uint32_t ri = 0; ri < resistors.size(); ++ri) {
    adj[cur[resistors[ri].a]++] = ri;
    adj[cur[resistors[ri].b]++] = ri;
  }

  BuiltTree out;
  if (elements.has_cap[input])
    out.warnings.push_back("capacitor on input node '" + std::string(input_name) +
                           "' ignored (node is clamped by the ideal source)");

  using CharVec = std::vector<char, ArenaAllocator<char>>;
  CharVec visited{ArenaAllocator<char>{arena}};
  visited.assign(n, 0);
  visited[input] = 1;
  std::vector<NodeId, ArenaAllocator<NodeId>> tree_id{ArenaAllocator<NodeId>{arena}};
  tree_id.assign(n, 0);
  CharVec used{ArenaAllocator<char>{arena}};
  used.assign(resistors.size(), 0);

  RCTreeBuilder builder;
  U32Vec frontier{ArenaAllocator<std::uint32_t>{arena}};
  U32Vec next{ArenaAllocator<std::uint32_t>{arena}};
  frontier.push_back(input);
  while (!frontier.empty()) {
    next.clear();
    for (const std::uint32_t u : frontier) {
      for (std::uint32_t k = off[u]; k < off[u + 1]; ++k) {
        const std::uint32_t ri = adj[k];
        if (used[ri]) continue;
        used[ri] = 1;
        const std::uint32_t v = (resistors[ri].a == u) ? resistors[ri].b : resistors[ri].a;
        if (visited[v])
          throw GraphBuildError("resistor closes a loop at node '" +
                                    std::string(elements.names[v]) + "' (not a tree)",
                                resistors[ri].tag, robust::Code::kCycle);
        const NodeId parent = (u == input) ? kSource : tree_id[u];
        double cap = 0.0;
        if (elements.has_cap[v]) {
          cap = elements.caps[v];
        } else {
          out.warnings.push_back("node '" + std::string(elements.names[v]) +
                                 "' has no capacitor; using 0F");
        }
        visited[v] = 1;
        // Unchecked: BFS discovery guarantees unique non-empty names and
        // parent-first order; the SPEF parser validated the values.
        tree_id[v] = builder.add_node_unchecked(std::string(elements.names[v]), parent,
                                                resistors[ri].value, cap);
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }

  for (std::size_t i = 0; i < resistors.size(); ++i)
    if (!used[i])
      throw GraphBuildError("resistor is disconnected from the input node", resistors[i].tag,
                            robust::Code::kDisconnected);
  // Caps are consumed by discovery; an unvisited capacitor node means a
  // floating capacitor.  Report the lexicographically smallest name, which
  // is what std::map iteration order gave the legacy parser.
  std::uint32_t leftover = kNoDenseNode;
  for (std::uint32_t i = 0; i < n; ++i)
    if (elements.has_cap[i] && !visited[i] &&
        (leftover == kNoDenseNode || elements.names[i] < elements.names[leftover]))
      leftover = i;
  if (leftover != kNoDenseNode)
    throw GraphBuildError("capacitor at node '" + std::string(elements.names[leftover]) +
                              "' is not connected to the tree",
                          0, robust::Code::kDisconnected);
  out.tree = std::move(builder).build();
  return out;
}

}  // namespace rct::detail
