#include "rctree/graph_builder.hpp"

namespace rct::detail {

BuiltTree build_tree_from_elements(const std::vector<ResistorEdge>& resistors,
                                   std::map<std::string, double> cap_at,
                                   const std::string& input_node) {
  if (resistors.empty()) throw GraphBuildError("no resistors", 0, robust::Code::kEmptyTree);

  std::map<std::string, std::vector<std::size_t>> adj;
  for (std::size_t i = 0; i < resistors.size(); ++i) {
    adj[resistors[i].a].push_back(i);
    adj[resistors[i].b].push_back(i);
  }
  if (!adj.contains(input_node))
    throw GraphBuildError("input node '" + input_node + "' touches no resistor", 0,
                          robust::Code::kDisconnected);

  BuiltTree out;
  if (const auto it = cap_at.find(input_node); it != cap_at.end()) {
    out.warnings.push_back("capacitor on input node '" + input_node +
                           "' ignored (node is clamped by the ideal source)");
    cap_at.erase(it);
  }

  RCTreeBuilder builder;
  std::map<std::string, NodeId> id_of;
  std::vector<char> used(resistors.size(), 0);
  std::vector<std::string> frontier{input_node};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& u : frontier) {
      for (std::size_t ri : adj[u]) {
        if (used[ri]) continue;
        used[ri] = 1;
        const ResistorEdge& r = resistors[ri];
        const std::string& v = (r.a == u) ? r.b : r.a;
        if (id_of.contains(v) || v == input_node)
          throw GraphBuildError("resistor closes a loop at node '" + v + "' (not a tree)",
                                r.tag, robust::Code::kCycle);
        const NodeId parent = (u == input_node) ? kSource : id_of.at(u);
        double cap = 0.0;
        if (const auto it = cap_at.find(v); it != cap_at.end()) {
          cap = it->second;
          cap_at.erase(it);
        } else {
          out.warnings.push_back("node '" + v + "' has no capacitor; using 0F");
        }
        id_of[v] = builder.add_node(v, parent, r.value, cap);
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }

  for (std::size_t i = 0; i < resistors.size(); ++i)
    if (!used[i])
      throw GraphBuildError("resistor is disconnected from the input node", resistors[i].tag,
                            robust::Code::kDisconnected);
  if (!cap_at.empty())
    throw GraphBuildError(
        "capacitor at node '" + cap_at.begin()->first + "' is not connected to the tree", 0,
        robust::Code::kDisconnected);

  out.tree = std::move(builder).build();
  return out;
}

}  // namespace rct::detail
