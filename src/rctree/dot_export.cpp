#include "rctree/dot_export.hpp"

#include <sstream>

#include "rctree/units.hpp"

namespace rct {

std::string to_dot(const RCTree& tree, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  os << "  src [label=\"source\", shape=circle];\n";
  for (NodeId i = 0; i < tree.size(); ++i) {
    os << "  n" << i << " [label=\"" << tree.name(i);
    if (options.show_values) os << "\\nC=" << format_engineering(tree.capacitance(i), "F");
    if (const auto it = options.annotations.find(i); it != options.annotations.end())
      os << "\\n" << it->second;
    os << "\"];\n";
  }
  for (NodeId i = 0; i < tree.size(); ++i) {
    const NodeId p = tree.parent(i);
    os << "  " << (p == kSource ? std::string("src") : "n" + std::to_string(p)) << " -> n"
       << i;
    if (options.show_values)
      os << " [label=\"" << format_engineering(tree.resistance(i), "") << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rct
