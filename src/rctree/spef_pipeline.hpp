#pragma once
// Decomposed SPEF parse pipeline.  parse_spef() is equivalent to:
//
//   ParsePlan plan = prepare_spef(text, options);        // index + header pass
//   for (i : plan.layout.sections)                       // parallelizable
//     results[i] = parse_spef_section(text, plan, i, arena);
//   SpefFile file = merge_spef(plan, results, options);  // deterministic order
//
// prepare_spef() runs the index pass (spef_index.hpp) and then processes the
// file-scope line runs serially — header keywords, *DESIGN, unit lines,
// stray statements — recording the unit state each *D_NET section starts
// with.  parse_spef_section() parses one *D_NET section against its unit
// snapshot; sections are independent, so engine::parse_spef_parallel fans
// them across a thread pool.  merge_spef() stitches run and section results
// back together in file (chunk) order, which reproduces the serial parser's
// diagnostic order exactly; in strict mode it rethrows the error from the
// earliest chunk — the same error the serial parser would have thrown first.
//
// Known (intentional) divergence from the old single-pass parser, affecting
// only pathological inputs: a unit line INSIDE a *D_NET section used to
// rescale every later net; now it applies only within its own section.  Unit
// lines at file scope — where every real deck puts them — behave identically.
//
// Arena lifetime rule: ShardResult owns only heap data (SpefNet trees,
// diagnostic strings).  Scratch allocated from the caller's Arena dies at
// Arena::reset(); node-name views point into `text`, which must outlive the
// returned SpefFile only if callers keep views (SpefFile itself copies).

#include <cstddef>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "rctree/arena.hpp"
#include "rctree/spef.hpp"
#include "rctree/spef_index.hpp"

namespace rct::spef {

/// Unit scale state (seconds / farads / ohms per SPEF unit).
struct Units {
  double time = 1e-9;
  double cap = 1e-12;
  double res = 1.0;
};

/// Output of parsing one chunk (a file-scope run or a *D_NET section).
struct ShardResult {
  std::vector<SpefNet> nets;                    ///< at most 1 for sections
  std::vector<robust::Diagnostic> diagnostics;  ///< lenient mode, input order
  std::size_t nets_rejected = 0;
  bool has_design = false;
  std::string design;  ///< last *DESIGN value seen in this chunk
  /// Strict mode: the error this chunk's lines would have thrown first in
  /// the serial parser (rethrown by merge_spef for the earliest chunk).
  std::exception_ptr error;
};

/// Index + serial header pass.
struct ParsePlan {
  Layout layout;
  std::vector<Units> section_units;      ///< unit snapshot per section
  std::vector<ShardResult> run_results;  ///< one per layout.runs
  Units final_units;                     ///< unit state after the last run
};

[[nodiscard]] ParsePlan prepare_spef(std::string_view text, const SpefParseOptions& options);

/// Parses section `index` of plan.layout against `text` (the same buffer the
/// plan was prepared from).  Scratch comes from `arena`; the caller may
/// reset() it after each call.  Thread-safe across distinct sections given
/// distinct arenas.
[[nodiscard]] ShardResult parse_spef_section(std::string_view text, const ParsePlan& plan,
                                             std::size_t index,
                                             const SpefParseOptions& options, Arena& arena);

/// Assembles the final SpefFile in file order.  `sections[i]` must be the
/// result for plan.layout.sections[i].  Strict mode: rethrows the earliest
/// chunk's error.  Consumes both arguments.
[[nodiscard]] SpefFile merge_spef(ParsePlan&& plan, std::vector<ShardResult>&& sections,
                                  const SpefParseOptions& options);

}  // namespace rct::spef
