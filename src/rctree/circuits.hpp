#pragma once
// Canonical circuits from the paper, plus the published measurement values
// used by the reproduction benches (Table I / Table II of
// Gupta-Tutuianu-Pileggi).
//
// The paper prints the topology of Fig. 1 (7 nodes, one main branch to C5
// and a side branch to C7) and the node roles for the 25-node tree of
// Section IV-B, but NOT the component values.  The values below were
// calibrated with tools/fit_fig1 (Nelder-Mead on log-parameters) so that the
// published Table I / Table II metrics are matched as closely as the
// topology permits; residuals are recorded in EXPERIMENTS.md.

#include <array>

#include "rctree/rctree.hpp"

namespace rct::circuits {

/// Fig. 1: ideal source -R1- n1(C1); chain n1-R2-n2-R3-n3-R4-n4-R5-n5 with
/// C2..C5; side branch n1-R6-n6-R7-n7 with C6, C7.  Node names n1..n7.
[[nodiscard]] RCTree fig1();

/// The three observation nodes of Table I, in paper order (C1, C5, C7).
[[nodiscard]] std::array<NodeId, 3> fig1_observed(const RCTree& t);

/// 25-node RC tree of Section IV-B (Figs. 13-14, Table II): a driver
/// section, a 17-node main line and two 4-node side branches.  Node "A" is
/// at the driving point, "B" mid-line, "C" the far leaf.
[[nodiscard]] RCTree tree25();

/// Observation nodes A, B, C of Table II, in paper order.
[[nodiscard]] std::array<NodeId, 3> tree25_observed(const RCTree& t);

// ---------------------------------------------------------------------------
// Published values (for side-by-side comparison in benches / EXPERIMENTS.md).
// All times in seconds.
// ---------------------------------------------------------------------------

/// One row of Table I.
struct Table1Row {
  const char* node;
  double actual_delay;
  double elmore;
  double lower_bound;   ///< max(mu - sigma, 0)
  double single_pole;   ///< ln(2) * T_D
  double prh_tmax;
  double prh_tmin;
};

/// Table I as published (nodes C1, C5, C7).
[[nodiscard]] std::array<Table1Row, 3> table1_published();

/// One row of Table II: 50% delays for rise times 1/5/10 ns and the Elmore
/// value, as published (nodes A, B, C).
struct Table2Row {
  const char* node;
  double elmore;
  double delay_1ns;
  double error_1ns;   ///< relative error (Elmore - delay)/delay, fraction
  double delay_5ns;
  double error_5ns;
  double delay_10ns;
  double error_10ns;
};

/// Table II as published.
[[nodiscard]] std::array<Table2Row, 3> table2_published();

}  // namespace rct::circuits
