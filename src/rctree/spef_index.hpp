#pragma once
// SPEF index pass: one forward scan over the raw bytes that finds every
// `*D_NET` ... `*END` section and the file-scope line runs between them,
// recording byte offsets and 1-based line numbers — without tokenizing
// values or allocating per line.  The section parsers (spef.cpp) then work
// purely on std::string_view slices of the same buffer, and
// engine::parse_spef_parallel fans the sections across a thread pool.
//
// The scanner only classifies each line's FIRST token (case-insensitive
// `*D_NET` / `*END`, honoring `//` comments and CR/tab/space separators);
// everything else — units, *DESIGN, defects — is the parsers' business, so
// the index pass stays memchr-speed.
//
// Offsets and line counters are 64-bit and the Indexer is feed()-able in
// chunks, so >4 GiB decks index correctly; the unit tests drive the
// arithmetic past 2^31 bytes by refeeding one buffer instead of allocating
// a giant fixture.

#include <cstdint>
#include <string_view>
#include <vector>

namespace rct::spef {

/// One *D_NET section: byte extent [offset, offset+length) covering the
/// *D_NET line through the *END line (inclusive, with its newline) — or
/// through the last line before the next *D_NET / EOF when *END is missing.
struct Section {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::size_t first_line = 0;  ///< 1-based line number of the *D_NET line
  /// Line number the net is "finished" at — the *END line, the next *D_NET
  /// line, or the last line of the file — matching the legacy parser's
  /// error locations exactly.
  std::size_t end_line = 0;
  bool has_end = false;  ///< terminated by *END (vs next *D_NET / EOF)
};

/// A maximal run of consecutive lines outside any section (header lines,
/// stray statements between *END and the next *D_NET).
struct FileScopeRun {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::size_t first_line = 0;
};

/// Sections and runs interleaved in file order; processing chunks in this
/// order visits every line exactly once, in line order.
struct Chunk {
  bool is_section = false;
  std::uint32_t index = 0;  ///< into Layout::sections or Layout::runs
};

struct Layout {
  std::uint64_t bytes = 0;
  /// Total line count as the legacy parser counted it: #newlines + 1 (a
  /// trailing newline yields a phantom final empty line).
  std::size_t lines = 0;
  std::vector<Section> sections;
  std::vector<FileScopeRun> runs;
  std::vector<Chunk> chunks;
};

/// Incremental scanner.  feed() consumes any byte chunking (lines may span
/// chunks); finish() closes the final section/run and returns the layout.
/// When fed a single contiguous buffer, section/run extents are valid
/// slices of it; when re-feeding buffers (offset-arithmetic tests), only
/// offsets and line numbers are meaningful.
class Indexer {
 public:
  void feed(std::string_view chunk);
  [[nodiscard]] Layout finish();

  [[nodiscard]] std::uint64_t bytes_consumed() const { return offset_; }
  [[nodiscard]] std::size_t lines_seen() const { return line_; }

 private:
  void line_complete(std::uint64_t line_start, std::uint64_t line_end);
  void open_run(std::uint64_t offset, std::size_t line);
  void close_run(std::uint64_t end_offset);
  void close_section(std::uint64_t end_offset, std::size_t finish_line, bool has_end);

  Layout layout_;
  std::uint64_t offset_ = 0;      ///< bytes consumed so far
  std::size_t line_ = 0;          ///< lines completed so far
  std::uint64_t line_start_ = 0;  ///< byte offset of the current line
  // First-token capture for the current (possibly chunk-spanning) line.
  char token_[16] = {};
  std::uint8_t token_len_ = 0;
  bool token_done_ = false;   ///< token ended (or line proved uninteresting)
  bool in_leading_ws_ = true;
  bool in_section_ = false;
  bool in_run_ = false;
  bool finished_ = false;
};

/// Indexes one contiguous buffer (the common case).
[[nodiscard]] Layout index_spef(std::string_view text);

}  // namespace rct::spef
