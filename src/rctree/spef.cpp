#include "rctree/spef.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "rctree/graph_builder.hpp"

namespace rct {
namespace {

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::istringstream is{std::string(line)};
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw SpefError("spef line " + std::to_string(line_no) + ": " + msg);
}

double unit_scale(std::size_t line_no, const std::string& unit) {
  static const std::map<std::string, double> kUnits = {
      {"S", 1.0},    {"MS", 1e-3},  {"US", 1e-6},  {"NS", 1e-9},  {"PS", 1e-12},
      {"F", 1.0},    {"UF", 1e-6},  {"NF", 1e-9},  {"PF", 1e-12}, {"FF", 1e-15},
      {"OHM", 1.0},  {"KOHM", 1e3}, {"MOHM", 1e6},
  };
  const auto it = kUnits.find(to_upper(unit));
  if (it == kUnits.end()) fail(line_no, "unknown unit '" + unit + "'");
  return it->second;
}

double parse_number(std::size_t line_no, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail(line_no, "bad number '" + text + "'");
  return v;
}

enum class Section { kNone, kConn, kCap, kRes };

}  // namespace

SpefFile parse_spef(std::string_view text) {
  SpefFile file;
  std::vector<detail::ResistorEdge> edges;
  std::map<std::string, double> caps;
  std::string net_name;
  std::string driver;
  std::vector<std::string> load_names;
  Section section = Section::kNone;
  bool in_net = false;

  auto finish_net = [&](std::size_t line_no) {
    if (!in_net) return;
    if (driver.empty()) fail(line_no, "net '" + net_name + "' has no *P driving port");
    SpefNet net;
    net.name = net_name;
    net.driver = driver;
    try {
      auto built = detail::build_tree_from_elements(edges, std::move(caps), driver);
      net.tree = std::move(built.tree);
    } catch (const detail::GraphBuildError& e) {
      fail(e.tag ? e.tag : line_no, "net '" + net_name + "': " + e.what());
    }
    for (const std::string& l : load_names) {
      const auto id = net.tree.find(l);
      if (!id) fail(line_no, "net '" + net_name + "': load pin '" + l + "' not in parasitics");
      net.loads.push_back(*id);
    }
    file.nets.push_back(std::move(net));
    edges.clear();
    caps.clear();
    load_names.clear();
    driver.clear();
    in_net = false;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (const auto comment = line.find("//"); comment != std::string_view::npos)
      line = line.substr(0, comment);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    const std::string head = to_upper(toks[0]);
    if (head == "*SPEF" || head == "*DATE" || head == "*VENDOR" || head == "*PROGRAM" ||
        head == "*VERSION" || head == "*DESIGN_FLOW" || head == "*DIVIDER" ||
        head == "*DELIMITER" || head == "*BUS_DELIMITER" || head == "*L_UNIT") {
      continue;  // opaque header metadata
    }
    if (head == "*DESIGN") {
      if (toks.size() >= 2) {
        file.design = toks[1];
        file.design.erase(std::remove(file.design.begin(), file.design.end(), '"'),
                          file.design.end());
      }
      continue;
    }
    if (head == "*T_UNIT" || head == "*C_UNIT" || head == "*R_UNIT") {
      if (toks.size() != 3) fail(line_no, head + " requires: value unit");
      const double scale = parse_number(line_no, toks[1]) * unit_scale(line_no, toks[2]);
      if (head == "*T_UNIT") file.time_unit = scale;
      if (head == "*C_UNIT") file.cap_unit = scale;
      if (head == "*R_UNIT") file.res_unit = scale;
      continue;
    }
    if (head == "*D_NET") {
      finish_net(line_no);
      if (toks.size() < 2) fail(line_no, "*D_NET requires a net name");
      net_name = toks[1];
      in_net = true;
      section = Section::kNone;
      continue;
    }
    if (head == "*CONN") {
      section = Section::kConn;
      continue;
    }
    if (head == "*CAP") {
      section = Section::kCap;
      continue;
    }
    if (head == "*RES") {
      section = Section::kRes;
      continue;
    }
    if (head == "*END") {
      finish_net(line_no);
      section = Section::kNone;
      continue;
    }
    if (head == "*INDUC") fail(line_no, "*INDUC sections are not supported (RC trees only)");

    if (!in_net) fail(line_no, "unexpected statement '" + toks[0] + "' outside *D_NET");
    switch (section) {
      case Section::kConn: {
        if (head == "*P") {
          if (toks.size() < 2) fail(line_no, "*P requires a port name");
          if (!driver.empty()) fail(line_no, "multiple *P driving ports on one net");
          driver = toks[1];
        } else if (head == "*I") {
          if (toks.size() < 2) fail(line_no, "*I requires a pin name");
          load_names.push_back(toks[1]);
        } else {
          fail(line_no, "unsupported *CONN entry '" + toks[0] + "'");
        }
        break;
      }
      case Section::kCap: {
        if (toks.size() == 3) {
          caps[toks[1]] += parse_number(line_no, toks[2]) * file.cap_unit;
        } else if (toks.size() == 4) {
          fail(line_no, "coupling capacitors are not supported (RC trees only)");
        } else {
          fail(line_no, "*CAP entry requires: index node value");
        }
        break;
      }
      case Section::kRes: {
        if (toks.size() != 4) fail(line_no, "*RES entry requires: index nodeA nodeB value");
        edges.push_back(
            {toks[1], toks[2], parse_number(line_no, toks[3]) * file.res_unit, line_no});
        break;
      }
      case Section::kNone:
        fail(line_no, "statement before any *CONN/*CAP/*RES section");
    }
  }
  finish_net(line_no);
  if (file.nets.empty()) throw SpefError("spef: no *D_NET sections found");
  return file;
}

SpefFile parse_spef_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpefError("spef: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_spef(ss.str());
}

std::string write_spef(const SpefFile& file) {
  std::ostringstream os;
  char buf[256];
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << (file.design.empty() ? "rct" : file.design) << "\"\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n\n";
  for (const SpefNet& net : file.nets) {
    const RCTree& t = net.tree;
    std::snprintf(buf, sizeof(buf), "*D_NET %s %.6g\n", net.name.c_str(),
                  t.total_capacitance() / 1e-12);
    os << buf;
    os << "*CONN\n*P " << net.driver << " I\n";
    for (NodeId l : net.loads) os << "*I " << t.name(l) << " O\n";
    os << "*CAP\n";
    std::size_t idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      if (t.capacitance(i) == 0.0) continue;
      std::snprintf(buf, sizeof(buf), "%zu %s %.6g\n", idx++, t.name(i).c_str(),
                    t.capacitance(i) / 1e-12);
      os << buf;
    }
    os << "*RES\n";
    idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      const std::string up = (t.parent(i) == kSource) ? net.driver : t.name(t.parent(i));
      std::snprintf(buf, sizeof(buf), "%zu %s %s %.6g\n", idx++, up.c_str(),
                    t.name(i).c_str(), t.resistance(i));
      os << buf;
    }
    os << "*END\n\n";
  }
  return os.str();
}

SpefFile spef_from_tree(const RCTree& tree, std::string net_name, std::string design) {
  SpefFile f;
  f.design = std::move(design);
  SpefNet net;
  net.name = std::move(net_name);
  net.tree = tree;
  net.driver = "drv";
  for (NodeId l : tree.leaves()) net.loads.push_back(l);
  f.nets.push_back(std::move(net));
  return f;
}

}  // namespace rct
