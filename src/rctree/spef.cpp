#include "rctree/spef.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "rctree/graph_builder.hpp"
#include "robust/fault.hpp"

namespace rct {
namespace {

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::istringstream is{std::string(line)};
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

obs::Counter& diagnostics_counter() {
  static obs::Counter& c = obs::registry().counter("parse.diagnostics");
  return c;
}

enum class Section { kNone, kConn, kCap, kRes };

/// Thrown inside the parser to signal "defect in the current *D_NET"; in
/// lenient mode it is converted to a Diagnostic and the net is skipped.
struct NetDefect {
  robust::Code code;
  std::size_t line;
  std::string message;
};

/// Shared parse state: strict mode throws SpefError at `fail`, lenient
/// mode records a Diagnostic and lets the caller recover.
class Parser {
 public:
  Parser(std::string_view text, const SpefParseOptions& options)
      : text_(text), options_(options) {}

  SpefFile run();

 private:
  [[noreturn]] void fail(std::size_t line_no, robust::Code code, const std::string& msg) {
    if (options_.lenient) throw NetDefect{code, line_no, msg};
    throw SpefError(code, msg, {options_.path, line_no}, "spef");
  }

  void diagnose(std::size_t line_no, robust::Code code, std::string msg,
                std::string net = {}) {
    diagnostics_counter().add();
    file_.diagnostics.push_back(
        {code, std::move(msg), {options_.path, line_no}, std::move(net)});
  }

  /// File-scope defect: strict throws, lenient records and carries on.
  void defect(std::size_t line_no, robust::Code code, const std::string& msg) {
    if (!options_.lenient) throw SpefError(code, msg, {options_.path, line_no}, "spef");
    diagnose(line_no, code, msg);
  }

  double unit_scale(std::size_t line_no, const std::string& unit) {
    static const std::map<std::string, double> kUnits = {
        {"S", 1.0},    {"MS", 1e-3},  {"US", 1e-6},  {"NS", 1e-9},  {"PS", 1e-12},
        {"F", 1.0},    {"UF", 1e-6},  {"NF", 1e-9},  {"PF", 1e-12}, {"FF", 1e-15},
        {"OHM", 1.0},  {"KOHM", 1e3}, {"MOHM", 1e6},
    };
    const auto it = kUnits.find(to_upper(unit));
    if (it == kUnits.end()) fail(line_no, robust::Code::kBadUnit, "unknown unit '" + unit + "'");
    return it->second;
  }

  double parse_number(std::size_t line_no, const std::string& text) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
      fail(line_no, robust::Code::kBadNumber, "bad number '" + text + "'");
    return v;
  }

  /// Validated resistance: finite and strictly positive, or a typed defect.
  double parse_resistance(std::size_t line_no, const std::string& text) {
    const double v = parse_number(line_no, text) * file_.res_unit;
    if (std::isnan(v) || std::isinf(v))
      fail(line_no, robust::Code::kNanValue, "resistance '" + text + "' is not finite");
    if (v <= 0.0)
      fail(line_no, robust::Code::kNonPhysicalValue,
           "non-physical resistance " + text + " (must be > 0)");
    return v;
  }

  /// Validated capacitance: finite; a finite negative value is repaired to
  /// 0F in lenient mode (diagnostic), rejected in strict mode.
  double parse_capacitance(std::size_t line_no, const std::string& node,
                           const std::string& text) {
    const double v = parse_number(line_no, text) * file_.cap_unit;
    if (std::isnan(v) || std::isinf(v))
      fail(line_no, robust::Code::kNanValue, "capacitance '" + text + "' is not finite");
    if (v < 0.0) {
      if (!options_.lenient)
        fail(line_no, robust::Code::kNonPhysicalValue,
             "non-physical capacitance " + text + " at node '" + node + "' (must be >= 0)");
      diagnose(line_no, robust::Code::kNonPhysicalValue,
               "repaired negative capacitance " + text + " at node '" + node + "' to 0F",
               net_name_);
      return 0.0;
    }
    return v;
  }

  void finish_net(std::size_t line_no);
  void reset_net() {
    edges_.clear();
    caps_.clear();
    load_names_.clear();
    driver_.clear();
    in_net_ = false;
    skipping_net_ = false;
  }

  std::string_view text_;
  const SpefParseOptions& options_;
  SpefFile file_;

  std::vector<detail::ResistorEdge> edges_;
  std::map<std::string, double> caps_;
  std::string net_name_;
  std::string driver_;
  std::vector<std::pair<std::string, std::size_t>> load_names_;  ///< name, line
  Section section_ = Section::kNone;
  bool in_net_ = false;
  /// Lenient recovery: the current *D_NET had a defect; ignore its
  /// remaining lines until *D_NET/*END.
  bool skipping_net_ = false;
};

void Parser::finish_net(std::size_t line_no) {
  if (!in_net_) return;
  if (skipping_net_) {
    ++file_.nets_rejected;
    reset_net();
    return;
  }
  try {
    robust::fault::maybe_throw("parse.spef.net", robust::Code::kSyntax);
    if (driver_.empty())
      fail(line_no, robust::Code::kNoDriver, "net '" + net_name_ + "' has no *P driving port");
    SpefNet net;
    net.name = net_name_;
    net.driver = driver_;
    try {
      auto built = detail::build_tree_from_elements(edges_, std::move(caps_), driver_);
      net.tree = std::move(built.tree);
    } catch (const detail::GraphBuildError& e) {
      fail(e.tag ? e.tag : line_no, e.code, "net '" + net_name_ + "': " + e.what());
    }
    for (const auto& [load, load_line] : load_names_) {
      const auto id = net.tree.find(load);
      if (!id) {
        const std::string msg =
            "net '" + net_name_ + "': load pin '" + load + "' not in parasitics";
        if (!options_.lenient)
          fail(load_line, robust::Code::kDanglingLoad, msg);
        diagnose(load_line, robust::Code::kDanglingLoad, "dropped dangling load: " + msg,
                 net_name_);
        continue;
      }
      net.loads.push_back(*id);
    }
    file_.nets.push_back(std::move(net));
  } catch (const NetDefect& d) {
    // Lenient only (fail() throws SpefError in strict mode).
    diagnose(d.line, d.code, d.message, net_name_);
    ++file_.nets_rejected;
  } catch (const robust::Error& e) {
    // Injected parse faults and other typed failures inside the net.
    if (!options_.lenient) throw;
    diagnose(line_no, e.code(), e.message(), net_name_);
    ++file_.nets_rejected;
  }
  reset_net();
}

SpefFile Parser::run() {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text_.size()) {
    const std::size_t nl = text_.find('\n', pos);
    std::string_view line =
        text_.substr(pos, nl == std::string_view::npos ? text_.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text_.size() + 1 : nl + 1;
    ++line_no;
    if (const auto comment = line.find("//"); comment != std::string_view::npos)
      line = line.substr(0, comment);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    const std::string head = to_upper(toks[0]);
    if (head == "*SPEF" || head == "*DATE" || head == "*VENDOR" || head == "*PROGRAM" ||
        head == "*VERSION" || head == "*DESIGN_FLOW" || head == "*DIVIDER" ||
        head == "*DELIMITER" || head == "*BUS_DELIMITER" || head == "*L_UNIT") {
      continue;  // opaque header metadata
    }
    if (head == "*DESIGN") {
      if (toks.size() >= 2) {
        file_.design = toks[1];
        file_.design.erase(std::remove(file_.design.begin(), file_.design.end(), '"'),
                           file_.design.end());
      }
      continue;
    }
    if (head == "*T_UNIT" || head == "*C_UNIT" || head == "*R_UNIT") {
      if (toks.size() != 3) {
        defect(line_no, robust::Code::kSyntax, head + " requires: value unit");
        continue;
      }
      try {
        const double scale = parse_number(line_no, toks[1]) * unit_scale(line_no, toks[2]);
        if (head == "*T_UNIT") file_.time_unit = scale;
        if (head == "*C_UNIT") file_.cap_unit = scale;
        if (head == "*R_UNIT") file_.res_unit = scale;
      } catch (const NetDefect& d) {
        diagnose(d.line, d.code, d.message);  // keep the default unit
      }
      continue;
    }
    if (head == "*D_NET") {
      finish_net(line_no);
      if (toks.size() < 2) {
        defect(line_no, robust::Code::kSyntax, "*D_NET requires a net name");
        continue;
      }
      net_name_ = toks[1];
      in_net_ = true;
      section_ = Section::kNone;
      continue;
    }
    if (head == "*CONN") {
      section_ = Section::kConn;
      continue;
    }
    if (head == "*CAP") {
      section_ = Section::kCap;
      continue;
    }
    if (head == "*RES") {
      section_ = Section::kRes;
      continue;
    }
    if (head == "*END") {
      finish_net(line_no);
      section_ = Section::kNone;
      continue;
    }
    if (skipping_net_) continue;  // lenient: discard the rest of a bad net

    try {
      if (head == "*INDUC")
        fail(line_no, robust::Code::kUnsupported,
             "*INDUC sections are not supported (RC trees only)");

      if (!in_net_) {
        defect(line_no, robust::Code::kSyntax,
               "unexpected statement '" + toks[0] + "' outside *D_NET");
        continue;
      }
      switch (section_) {
        case Section::kConn: {
          if (head == "*P") {
            if (toks.size() < 2) fail(line_no, robust::Code::kSyntax, "*P requires a port name");
            if (!driver_.empty())
              fail(line_no, robust::Code::kSyntax, "multiple *P driving ports on one net");
            driver_ = toks[1];
          } else if (head == "*I") {
            if (toks.size() < 2) fail(line_no, robust::Code::kSyntax, "*I requires a pin name");
            load_names_.emplace_back(toks[1], line_no);
          } else {
            fail(line_no, robust::Code::kUnsupported,
                 "unsupported *CONN entry '" + toks[0] + "'");
          }
          break;
        }
        case Section::kCap: {
          if (toks.size() == 3) {
            caps_[toks[1]] += parse_capacitance(line_no, toks[1], toks[2]);
          } else if (toks.size() == 4) {
            fail(line_no, robust::Code::kUnsupported,
                 "coupling capacitors are not supported (RC trees only)");
          } else {
            fail(line_no, robust::Code::kSyntax, "*CAP entry requires: index node value");
          }
          break;
        }
        case Section::kRes: {
          if (toks.size() != 4)
            fail(line_no, robust::Code::kSyntax, "*RES entry requires: index nodeA nodeB value");
          if (toks[1] == toks[2])
            fail(line_no, robust::Code::kDuplicateNode,
                 "resistor shorts node '" + toks[1] + "' to itself");
          edges_.push_back({toks[1], toks[2], parse_resistance(line_no, toks[3]), line_no});
          break;
        }
        case Section::kNone:
          fail(line_no, robust::Code::kSyntax, "statement before any *CONN/*CAP/*RES section");
      }
    } catch (const NetDefect& d) {
      // Lenient recovery: the whole current net is suspect; skip it.
      diagnose(d.line, d.code, d.message, net_name_);
      if (in_net_)
        skipping_net_ = true;
    }
  }
  finish_net(line_no);
  if (in_net_ && options_.lenient) {
    // Truncated input: the final *D_NET never saw its *END.
    diagnose(line_no, robust::Code::kSyntax,
             "net '" + net_name_ + "' truncated (missing *END)", net_name_);
  }
  if (file_.nets.empty()) {
    if (!options_.lenient)
      throw SpefError(robust::Code::kEmptyInput, "no *D_NET sections found",
                      {options_.path, 0}, "spef");
    if (file_.diagnostics.empty())
      diagnose(0, robust::Code::kEmptyInput, "no *D_NET sections found");
  }
  return file_;
}

}  // namespace

SpefFile parse_spef(std::string_view text, const SpefParseOptions& options) {
  return Parser(text, options).run();
}

SpefFile parse_spef(std::string_view text) { return parse_spef(text, SpefParseOptions{}); }

SpefFile parse_spef_file(const std::string& path, const SpefParseOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw SpefError(robust::Code::kFileOpen, "cannot open '" + path + "'", {path, 0}, "spef");
  std::ostringstream ss;
  ss << in.rdbuf();
  SpefParseOptions with_path = options;
  if (with_path.path.empty()) with_path.path = path;
  return parse_spef(ss.str(), with_path);
}

SpefFile parse_spef_file(const std::string& path) {
  return parse_spef_file(path, SpefParseOptions{});
}

std::string write_spef(const SpefFile& file) {
  std::ostringstream os;
  char buf[256];
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << (file.design.empty() ? "rct" : file.design) << "\"\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n\n";
  for (const SpefNet& net : file.nets) {
    const RCTree& t = net.tree;
    std::snprintf(buf, sizeof(buf), "*D_NET %s %.6g\n", net.name.c_str(),
                  t.total_capacitance() / 1e-12);
    os << buf;
    os << "*CONN\n*P " << net.driver << " I\n";
    for (NodeId l : net.loads) os << "*I " << t.name(l) << " O\n";
    os << "*CAP\n";
    std::size_t idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      if (t.capacitance(i) == 0.0) continue;
      std::snprintf(buf, sizeof(buf), "%zu %s %.6g\n", idx++, t.name(i).c_str(),
                    t.capacitance(i) / 1e-12);
      os << buf;
    }
    os << "*RES\n";
    idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      const std::string up = (t.parent(i) == kSource) ? net.driver : t.name(t.parent(i));
      std::snprintf(buf, sizeof(buf), "%zu %s %s %.6g\n", idx++, up.c_str(),
                    t.name(i).c_str(), t.resistance(i));
      os << buf;
    }
    os << "*END\n\n";
  }
  return os.str();
}

SpefFile spef_from_tree(const RCTree& tree, std::string net_name, std::string design) {
  SpefFile f;
  f.design = std::move(design);
  SpefNet net;
  net.name = std::move(net_name);
  net.tree = tree;
  net.driver = "drv";
  for (NodeId l : tree.leaves()) net.loads.push_back(l);
  f.nets.push_back(std::move(net));
  return f;
}

}  // namespace rct
