#include "rctree/spef.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "rctree/graph_builder.hpp"
#include "rctree/mapped_file.hpp"
#include "rctree/spef_pipeline.hpp"
#include "robust/fault.hpp"

namespace rct {
namespace {

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

/// Token separators istringstream's operator>> skips ('\n' cannot occur:
/// lines are split on it first).
constexpr bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' || c == '\n';
}

/// Case-insensitive (ASCII) equality against an UPPERCASE keyword literal.
bool ieq(std::string_view s, std::string_view upper) {
  if (s.size() != upper.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
    if (c != upper[i]) return false;
  }
  return true;
}

/// Zero-copy tokenization: views into the line, comment-stripped.  Only the
/// first four token values are ever inspected; `n` still counts them all
/// (the grammar distinguishes 3 vs 4 vs more tokens).
struct Toks {
  std::string_view t[4];
  std::size_t n = 0;
};

Toks split_line(std::string_view line) {
  if (const auto comment = line.find("//"); comment != std::string_view::npos)
    line = line.substr(0, comment);
  Toks toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_ws(line[i])) ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && !is_ws(line[i])) ++i;
    if (toks.n < 4) toks.t[toks.n] = line.substr(start, i - start);
    ++toks.n;
  }
  return toks;
}

obs::Counter& diagnostics_counter() {
  static obs::Counter& c = obs::registry().counter("parse.diagnostics");
  return c;
}

enum class NetSection { kNone, kConn, kCap, kRes };

/// Thrown inside a shard to signal "defect in the current *D_NET"; in
/// lenient mode it is converted to a Diagnostic and the net is skipped.
struct NetDefect {
  robust::Code code;
  std::size_t line;
  std::string message;
};

/// Parses one chunk of the file — a file-scope run or a *D_NET section —
/// with the exact line dispatch of the old single-pass parser.  All net
/// scratch (edges, cap map, load list) is arena-backed and the token values
/// are views into the input buffer; nothing is copied until a net survives.
class Shard {
 public:
  Shard(const SpefParseOptions& options, spef::Units units, Arena& arena)
      : options_(options),
        units_(units),
        arena_(arena),
        nodes_(32, detail::SvHash{}, std::equal_to<>{},
               ArenaAllocator<std::pair<const std::string_view, std::uint32_t>>{arena}),
        names_(ArenaAllocator<std::string_view>{arena}),
        cap_val_(ArenaAllocator<double>{arena}),
        has_cap_(ArenaAllocator<unsigned char>{arena}),
        res_(ArenaAllocator<detail::DenseResistor>{arena}),
        load_names_(ArenaAllocator<std::pair<std::string_view, std::size_t>>{arena}) {}

  /// Processes the lines of `slice` (whose first line is 1-based
  /// `first_line`), then finishes any open net at `finish_line`.
  spef::ShardResult run(std::string_view slice, std::size_t first_line,
                        std::size_t finish_line) {
    try {
      std::size_t pos = 0;
      std::size_t line_no = first_line == 0 ? 0 : first_line - 1;
      while (pos < slice.size()) {
        const std::size_t nl = slice.find('\n', pos);
        const std::string_view line =
            slice.substr(pos, nl == std::string_view::npos ? slice.size() - pos : nl - pos);
        pos = (nl == std::string_view::npos) ? slice.size() : nl + 1;
        ++line_no;
        process_line(line, line_no);
      }
      finish_net(finish_line);
    } catch (...) {
      // Strict mode: the error the serial parser would have thrown at this
      // point.  merge_spef() rethrows the earliest chunk's error.
      result_.error = std::current_exception();
    }
    return std::move(result_);
  }

  [[nodiscard]] spef::Units units() const { return units_; }

 private:
  [[noreturn]] void fail(std::size_t line_no, robust::Code code, const std::string& msg) {
    if (options_.lenient) throw NetDefect{code, line_no, msg};
    throw SpefError(code, msg, {options_.path, line_no}, "spef");
  }

  void diagnose(std::size_t line_no, robust::Code code, std::string msg,
                std::string_view net = {}) {
    diagnostics_counter().add();
    result_.diagnostics.push_back(
        {code, std::move(msg), {options_.path, line_no}, std::string(net)});
  }

  /// File-scope defect: strict throws, lenient records and carries on.
  void defect(std::size_t line_no, robust::Code code, const std::string& msg) {
    if (!options_.lenient) throw SpefError(code, msg, {options_.path, line_no}, "spef");
    diagnose(line_no, code, msg);
  }

  double unit_scale(std::size_t line_no, std::string_view unit) {
    static const std::map<std::string, double> kUnits = {
        {"S", 1.0},    {"MS", 1e-3},  {"US", 1e-6},  {"NS", 1e-9},  {"PS", 1e-12},
        {"F", 1.0},    {"UF", 1e-6},  {"NF", 1e-9},  {"PF", 1e-12}, {"FF", 1e-15},
        {"OHM", 1.0},  {"KOHM", 1e3}, {"MOHM", 1e6},
    };
    const auto it = kUnits.find(to_upper(unit));
    if (it == kUnits.end())
      fail(line_no, robust::Code::kBadUnit, "unknown unit '" + std::string(unit) + "'");
    return it->second;
  }

  double parse_number(std::size_t line_no, std::string_view text) {
    double v{};
    const char* const first = text.data();
    const char* const last = first + text.size();
    if (const auto [p, ec] = std::from_chars(first, last, v);
        ec == std::errc() && p == last)
      return v;
    // Slow path keeping strtod's exact acceptance (the old parser's): '+'
    // prefixes, hex floats, out-of-range -> HUGE_VAL / 0.
    char buf[128];
    std::string big;
    const char* cstr;
    if (text.size() < sizeof(buf)) {
      std::memcpy(buf, text.data(), text.size());
      buf[text.size()] = '\0';
      cstr = buf;
    } else {
      big.assign(text);
      cstr = big.c_str();
    }
    char* end = nullptr;
    const double s = std::strtod(cstr, &end);
    if (end == cstr || *end != '\0')
      fail(line_no, robust::Code::kBadNumber, "bad number '" + std::string(text) + "'");
    return s;
  }

  /// Validated resistance: finite and strictly positive, or a typed defect.
  double parse_resistance(std::size_t line_no, std::string_view text) {
    const double v = parse_number(line_no, text) * units_.res;
    if (std::isnan(v) || std::isinf(v))
      fail(line_no, robust::Code::kNanValue,
           "resistance '" + std::string(text) + "' is not finite");
    if (v <= 0.0)
      fail(line_no, robust::Code::kNonPhysicalValue,
           "non-physical resistance " + std::string(text) + " (must be > 0)");
    return v;
  }

  /// Validated capacitance: finite; a finite negative value is repaired to
  /// 0F in lenient mode (diagnostic), rejected in strict mode.
  double parse_capacitance(std::size_t line_no, std::string_view node, std::string_view text) {
    const double v = parse_number(line_no, text) * units_.cap;
    if (std::isnan(v) || std::isinf(v))
      fail(line_no, robust::Code::kNanValue,
           "capacitance '" + std::string(text) + "' is not finite");
    if (v < 0.0) {
      if (!options_.lenient)
        fail(line_no, robust::Code::kNonPhysicalValue,
             "non-physical capacitance " + std::string(text) + " at node '" +
                 std::string(node) + "' (must be >= 0)");
      diagnose(line_no, robust::Code::kNonPhysicalValue,
               "repaired negative capacitance " + std::string(text) + " at node '" +
                   std::string(node) + "' to 0F",
               net_name_);
      return 0.0;
    }
    return v;
  }

  /// Dense node id for `name` (a view into the parse buffer), minted on
  /// first encounter.
  std::uint32_t intern(std::string_view name) {
    const auto [it, inserted] =
        nodes_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
    if (inserted) {
      names_.push_back(name);
      cap_val_.push_back(0.0);
      has_cap_.push_back(0);
    }
    return it->second;
  }

  void process_line(std::string_view raw_line, std::size_t line_no) {
    const Toks toks = split_line(raw_line);
    if (toks.n == 0) return;
    const std::string_view t0 = toks.t[0];
    const bool star = t0[0] == '*';  // every keyword starts with '*', so
                                     // data lines skip the whole ladder
    // The keyword checks are mutually exclusive literal matches, so their
    // order is free; net-structure keywords come first (they dominate) and
    // 2-char tokens (*P / *I — the hottest keyword lines) skip the ladder
    // entirely, falling straight through to the section dispatch.
    if (star && t0.size() > 2) {
      if (ieq(t0, "*D_NET")) {
        finish_net(line_no);
        if (toks.n < 2) {
          defect(line_no, robust::Code::kSyntax, "*D_NET requires a net name");
          return;
        }
        net_name_ = toks.t[1];
        in_net_ = true;
        section_ = NetSection::kNone;
        return;
      }
      if (ieq(t0, "*CONN")) {
        section_ = NetSection::kConn;
        return;
      }
      if (ieq(t0, "*CAP")) {
        section_ = NetSection::kCap;
        return;
      }
      if (ieq(t0, "*RES")) {
        section_ = NetSection::kRes;
        return;
      }
      if (ieq(t0, "*END")) {
        finish_net(line_no);
        section_ = NetSection::kNone;
        return;
      }
      if (ieq(t0, "*SPEF") || ieq(t0, "*DATE") || ieq(t0, "*VENDOR") ||
          ieq(t0, "*PROGRAM") || ieq(t0, "*VERSION") || ieq(t0, "*DESIGN_FLOW") ||
          ieq(t0, "*DIVIDER") || ieq(t0, "*DELIMITER") || ieq(t0, "*BUS_DELIMITER") ||
          ieq(t0, "*L_UNIT")) {
        return;  // opaque header metadata
      }
      if (ieq(t0, "*DESIGN")) {
        if (toks.n >= 2) {
          std::string d(toks.t[1]);
          d.erase(std::remove(d.begin(), d.end(), '"'), d.end());
          result_.design = std::move(d);
          result_.has_design = true;
        }
        return;
      }
      if (ieq(t0, "*T_UNIT") || ieq(t0, "*C_UNIT") || ieq(t0, "*R_UNIT")) {
        if (toks.n != 3) {
          defect(line_no, robust::Code::kSyntax, to_upper(t0) + " requires: value unit");
          return;
        }
        try {
          const double scale =
              parse_number(line_no, toks.t[1]) * unit_scale(line_no, toks.t[2]);
          if (ieq(t0, "*T_UNIT")) units_.time = scale;
          if (ieq(t0, "*C_UNIT")) units_.cap = scale;
          if (ieq(t0, "*R_UNIT")) units_.res = scale;
        } catch (const NetDefect& d) {
          diagnose(d.line, d.code, d.message);  // keep the default unit
        }
        return;
      }
    }
    if (skipping_net_) return;  // lenient: discard the rest of a bad net

    try {
      if (star && ieq(t0, "*INDUC"))
        fail(line_no, robust::Code::kUnsupported,
             "*INDUC sections are not supported (RC trees only)");

      if (!in_net_) {
        defect(line_no, robust::Code::kSyntax,
               "unexpected statement '" + std::string(t0) + "' outside *D_NET");
        return;
      }
      switch (section_) {
        case NetSection::kConn: {
          if (star && ieq(t0, "*P")) {
            if (toks.n < 2) fail(line_no, robust::Code::kSyntax, "*P requires a port name");
            if (!driver_.empty())
              fail(line_no, robust::Code::kSyntax, "multiple *P driving ports on one net");
            driver_ = toks.t[1];
          } else if (star && ieq(t0, "*I")) {
            if (toks.n < 2) fail(line_no, robust::Code::kSyntax, "*I requires a pin name");
            load_names_.emplace_back(toks.t[1], line_no);
          } else {
            fail(line_no, robust::Code::kUnsupported,
                 "unsupported *CONN entry '" + std::string(t0) + "'");
          }
          break;
        }
        case NetSection::kCap: {
          if (toks.n == 3) {
            // Value first: a bad number must not create the node entry
            // (matching the legacy map's RHS-before-subscript evaluation).
            const double v = parse_capacitance(line_no, toks.t[1], toks.t[2]);
            const std::uint32_t id = intern(toks.t[1]);
            cap_val_[id] += v;
            has_cap_[id] = 1;
          } else if (toks.n == 4) {
            fail(line_no, robust::Code::kUnsupported,
                 "coupling capacitors are not supported (RC trees only)");
          } else {
            fail(line_no, robust::Code::kSyntax, "*CAP entry requires: index node value");
          }
          break;
        }
        case NetSection::kRes: {
          if (toks.n != 4)
            fail(line_no, robust::Code::kSyntax, "*RES entry requires: index nodeA nodeB value");
          if (toks.t[1] == toks.t[2])
            fail(line_no, robust::Code::kDuplicateNode,
                 "resistor shorts node '" + std::string(toks.t[1]) + "' to itself");
          {
            const double v = parse_resistance(line_no, toks.t[3]);
            res_.push_back({intern(toks.t[1]), intern(toks.t[2]), v, line_no});
          }
          break;
        }
        case NetSection::kNone:
          fail(line_no, robust::Code::kSyntax, "statement before any *CONN/*CAP/*RES section");
      }
    } catch (const NetDefect& d) {
      // Lenient recovery: the whole current net is suspect; skip it.
      diagnose(d.line, d.code, d.message, net_name_);
      if (in_net_) skipping_net_ = true;
    }
  }

  void finish_net(std::size_t line_no) {
    if (!in_net_) return;
    if (skipping_net_) {
      ++result_.nets_rejected;
      reset_net();
      return;
    }
    try {
      robust::fault::maybe_throw("parse.spef.net", robust::Code::kSyntax);
      if (driver_.empty())
        fail(line_no, robust::Code::kNoDriver,
             "net '" + std::string(net_name_) + "' has no *P driving port");
      SpefNet net;
      net.name = std::string(net_name_);
      net.driver = std::string(driver_);
      try {
        const auto input_it = nodes_.find(driver_);
        const std::uint32_t input =
            input_it == nodes_.end() ? detail::kNoDenseNode : input_it->second;
        const detail::DenseElements elements{{names_.data(), names_.size()},
                                             {res_.data(), res_.size()},
                                             {cap_val_.data(), cap_val_.size()},
                                             {has_cap_.data(), has_cap_.size()}};
        auto built = detail::build_tree_from_dense(elements, input, driver_, arena_);
        net.tree = std::move(built.tree);
      } catch (const detail::GraphBuildError& e) {
        fail(e.tag ? e.tag : line_no, e.code,
             "net '" + std::string(net_name_) + "': " + e.what());
      }
      for (const auto& [load, load_line] : load_names_) {
        const auto id = net.tree.find(load);
        if (!id) {
          const std::string msg = "net '" + std::string(net_name_) + "': load pin '" +
                                  std::string(load) + "' not in parasitics";
          if (!options_.lenient) fail(load_line, robust::Code::kDanglingLoad, msg);
          diagnose(load_line, robust::Code::kDanglingLoad, "dropped dangling load: " + msg,
                   net_name_);
          continue;
        }
        net.loads.push_back(*id);
      }
      result_.nets.push_back(std::move(net));
    } catch (const NetDefect& d) {
      // Lenient only (fail() throws SpefError in strict mode).
      diagnose(d.line, d.code, d.message, net_name_);
      ++result_.nets_rejected;
    } catch (const robust::Error& e) {
      // Injected parse faults and other typed failures inside the net.
      if (!options_.lenient) throw;
      diagnose(line_no, e.code(), e.message(), net_name_);
      ++result_.nets_rejected;
    }
    reset_net();
  }

  void reset_net() {
    nodes_.clear();
    names_.clear();
    cap_val_.clear();
    has_cap_.clear();
    res_.clear();
    load_names_.clear();
    driver_ = {};
    in_net_ = false;
    skipping_net_ = false;
    // net_name_ intentionally survives (legacy quirk: later file-scope
    // defects in the same chunk attribute to the last net).
  }

  const SpefParseOptions& options_;
  spef::Units units_;
  Arena& arena_;
  spef::ShardResult result_;

  // Per-net element graph with node names interned to dense ids as lines
  // are parsed, so tree construction needs no hashing at all.
  detail::ArenaSvMap<std::uint32_t> nodes_;
  std::vector<std::string_view, ArenaAllocator<std::string_view>> names_;
  std::vector<double, ArenaAllocator<double>> cap_val_;
  std::vector<unsigned char, ArenaAllocator<unsigned char>> has_cap_;
  std::vector<detail::DenseResistor, ArenaAllocator<detail::DenseResistor>> res_;
  std::vector<std::pair<std::string_view, std::size_t>,
              ArenaAllocator<std::pair<std::string_view, std::size_t>>>
      load_names_;  ///< name, line
  std::string_view net_name_;
  std::string_view driver_;
  NetSection section_ = NetSection::kNone;
  bool in_net_ = false;
  /// Lenient recovery: the current *D_NET had a defect; ignore its
  /// remaining lines until *D_NET/*END.
  bool skipping_net_ = false;
};

}  // namespace

namespace spef {

ParsePlan prepare_spef(std::string_view text, const SpefParseOptions& options) {
  obs::registry().counter("parse.bytes").add(text.size());
  ParsePlan plan;
  plan.layout = index_spef(text);
  plan.section_units.reserve(plan.layout.sections.size());
  plan.run_results.resize(plan.layout.runs.size());
  Arena arena;
  Units units;
  for (const Chunk& c : plan.layout.chunks) {
    if (c.is_section) {
      plan.section_units.push_back(units);
      continue;
    }
    const FileScopeRun& run = plan.layout.runs[c.index];
    const std::string_view slice = text.substr(run.offset, run.length);
    // Most runs are the blank separator lines between *END and the next
    // *D_NET; whitespace-only runs cannot produce any output.
    if (slice.find_first_not_of(" \t\r\v\f\n") == std::string_view::npos) continue;
    Shard shard(options, units, arena);
    plan.run_results[c.index] = shard.run(slice, run.first_line, /*finish_line=*/0);
    units = shard.units();
    arena.reset();
  }
  plan.final_units = units;
  return plan;
}

ShardResult parse_spef_section(std::string_view text, const ParsePlan& plan, std::size_t index,
                               const SpefParseOptions& options, Arena& arena) {
  const Section& s = plan.layout.sections[index];
  Shard shard(options, plan.section_units[index], arena);
  return shard.run(text.substr(s.offset, s.length), s.first_line, s.end_line);
}

SpefFile merge_spef(ParsePlan&& plan, std::vector<ShardResult>&& sections,
                    const SpefParseOptions& options) {
  SpefFile file;
  file.time_unit = plan.final_units.time;
  file.cap_unit = plan.final_units.cap;
  file.res_unit = plan.final_units.res;
  std::size_t net_count = 0;
  std::size_t diag_count = 0;
  for (const ShardResult& r : sections) {
    net_count += r.nets.size();
    diag_count += r.diagnostics.size();
  }
  file.nets.reserve(net_count);
  file.diagnostics.reserve(diag_count);
  for (const Chunk& c : plan.layout.chunks) {
    ShardResult& r = c.is_section ? sections[c.index] : plan.run_results[c.index];
    if (r.error) std::rethrow_exception(r.error);
    if (r.has_design) file.design = std::move(r.design);
    for (auto& d : r.diagnostics) file.diagnostics.push_back(std::move(d));
    for (auto& n : r.nets) file.nets.push_back(std::move(n));
    file.nets_rejected += r.nets_rejected;
  }
  if (file.nets.empty()) {
    if (!options.lenient)
      throw SpefError(robust::Code::kEmptyInput, "no *D_NET sections found",
                      {options.path, 0}, "spef");
    if (file.diagnostics.empty()) {
      diagnostics_counter().add();
      file.diagnostics.push_back(
          {robust::Code::kEmptyInput, "no *D_NET sections found", {options.path, 0}, {}});
    }
  }
  return file;
}

}  // namespace spef

SpefFile parse_spef(std::string_view text, const SpefParseOptions& options) {
  spef::ParsePlan plan = spef::prepare_spef(text, options);
  Arena arena;
  std::vector<spef::ShardResult> results;
  results.reserve(plan.layout.sections.size());
  for (std::size_t i = 0; i < plan.layout.sections.size(); ++i) {
    results.push_back(spef::parse_spef_section(text, plan, i, options, arena));
    arena.reset();
    if (results.back().error) {
      // Strict mode: nothing after the first error can be observed — the
      // merge below rethrows at or before this chunk.
      results.resize(plan.layout.sections.size());
      break;
    }
  }
  return spef::merge_spef(std::move(plan), std::move(results), options);
}

SpefFile parse_spef(std::string_view text) { return parse_spef(text, SpefParseOptions{}); }

SpefFile parse_spef_file(const std::string& path, const SpefParseOptions& options) {
  MappedFile file;
  if (!file.open(path))
    throw SpefError(robust::Code::kFileOpen, "cannot open '" + path + "'", {path, 0}, "spef");
  SpefParseOptions with_path = options;
  if (with_path.path.empty()) with_path.path = path;
  return parse_spef(file.view(), with_path);
}

SpefFile parse_spef_file(const std::string& path) {
  return parse_spef_file(path, SpefParseOptions{});
}

namespace {

/// Shortest representation that round-trips exactly (std::to_chars).
std::string_view format_shortest(char (&buf)[32], double v) {
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return {buf, static_cast<std::size_t>(p - buf)};
}

}  // namespace

std::string write_spef(const SpefFile& file) {
  std::ostringstream os;
  char buf[32];
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << (file.design.empty() ? "rct" : file.design) << "\"\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n\n";
  for (const SpefNet& net : file.nets) {
    const RCTree& t = net.tree;
    os << "*D_NET " << net.name << ' ' << format_shortest(buf, t.total_capacitance() / 1e-12)
       << '\n';
    os << "*CONN\n*P " << net.driver << " I\n";
    for (NodeId l : net.loads) os << "*I " << t.name(l) << " O\n";
    os << "*CAP\n";
    std::size_t idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      if (t.capacitance(i) == 0.0) continue;
      os << idx++ << ' ' << t.name(i) << ' ' << format_shortest(buf, t.capacitance(i) / 1e-12)
         << '\n';
    }
    os << "*RES\n";
    idx = 1;
    for (NodeId i = 0; i < t.size(); ++i) {
      const std::string up = (t.parent(i) == kSource) ? net.driver : t.name(t.parent(i));
      os << idx++ << ' ' << up << ' ' << t.name(i) << ' '
         << format_shortest(buf, t.resistance(i)) << '\n';
    }
    os << "*END\n\n";
  }
  return os.str();
}

SpefFile spef_from_tree(const RCTree& tree, std::string net_name, std::string design) {
  SpefFile f;
  f.design = std::move(design);
  SpefNet net;
  net.name = std::move(net_name);
  net.tree = tree;
  net.driver = "drv";
  for (NodeId l : tree.leaves()) net.loads.push_back(l);
  f.nets.push_back(std::move(net));
  return f;
}

}  // namespace rct
