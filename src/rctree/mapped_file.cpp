#include "rctree/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rct {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  close();
  heap_ = std::move(other.heap_);
  error_ = std::move(other.error_);
  size_ = other.size_;
  mapped_ = other.mapped_;
  opened_ = other.opened_;
  data_ = mapped_ ? other.data_ : heap_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.opened_ = false;
  return *this;
}

bool MappedFile::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error_ = "cannot open '" + path + "': " + std::strerror(errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                     fd, 0);
    if (p != MAP_FAILED) {
      // Sequential single-pass access pattern: let readahead run hot.
      (void)::madvise(p, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
      data_ = static_cast<const char*>(p);
      size_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
      opened_ = true;
      ::close(fd);
      return true;
    }
  }
  // Fallback: pipes, special files, empty files, or a failed mmap — read
  // the bytes onto the heap instead.
  heap_.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = "cannot read '" + path + "': " + std::strerror(errno);
      ::close(fd);
      heap_.clear();
      return false;
    }
    if (n == 0) break;
    heap_.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  data_ = heap_.data();
  size_ = heap_.size();
  mapped_ = false;
  opened_ = true;
  return true;
}

void MappedFile::close() {
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<char*>(data_), size_);
  heap_.clear();
  heap_.shrink_to_fit();
  error_.clear();
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  opened_ = false;
}

}  // namespace rct
