#pragma once
// Structural transformations on RC trees:
//
//  * merge_series   — collapse capless degree-1 interior nodes (series
//                     resistors merge; Elmore-family metrics are preserved
//                     exactly because no capacitance moves)
//  * prune_subtree  — drop a subtree, optionally lumping its total
//                     capacitance at the attachment point (the standard
//                     "lumped load" approximation)
//  * add_cap        — return a copy with extra capacitance at a node
//  * segmented wire — build an N-section wire from physical length and
//                     per-unit-length R/C (the pi-ladder discretization of
//                     a distributed RC line)

#include <string>

#include "rctree/rctree.hpp"

namespace rct {

/// Collapses every zero-capacitance node that has exactly one child by
/// summing its edge resistance into the child's.  Node names of collapsed
/// nodes disappear.  Repeats until a fixed point.
[[nodiscard]] RCTree merge_series(const RCTree& tree);

/// Returns a copy without the subtree rooted at `node`.  When `lump` is
/// true the subtree's total capacitance is added at the parent (kSource
/// parents are an error: the root subtree cannot be pruned).
[[nodiscard]] RCTree prune_subtree(const RCTree& tree, NodeId node, bool lump);

/// Copy with `extra` farads added at `node`.
[[nodiscard]] RCTree add_cap(const RCTree& tree, NodeId node, double extra);

/// Physical wire parameters (per-unit-length), e.g. ohm/um and F/um.
struct WireParams {
  double res_per_length;
  double cap_per_length;
};

/// Builds an N-section ladder for a wire of `length` units driven through
/// `driver_resistance`, with `load_cap` at the far end.  Node names
/// "w1".."wN"; more sections converge to the distributed-line response.
[[nodiscard]] RCTree segmented_wire(double length, const WireParams& params,
                                    std::size_t sections, double driver_resistance,
                                    double load_cap);

}  // namespace rct
