#pragma once
// Cooperative deadlines.  A Deadline is a wall-clock point checked at safe
// points in long computations (before an eigensolve, every few report
// rows); check() throws robust::Error(kTimeout), so a net that blows its
// budget unwinds to the engine's per-net failure handler instead of
// stalling the whole batch.  Cooperative means exactly that: code between
// checkpoints runs to completion, no thread is ever killed.
//
// A Deadline can also be cancelled from another thread (cancel() is a
// single atomic store, safe to call concurrently with check()); the next
// checkpoint then throws robust::Error(kCancelled).  The server's graceful
// drain uses this to cut in-flight requests loose at --drain-timeout-ms
// without ever killing a worker thread.

#include <atomic>
#include <chrono>
#include <string>

#include "robust/error.hpp"

namespace rct::robust {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires (but stays cancellable).
  Deadline() = default;

  // Copies carry the cancellation state at copy time; the atomic itself is
  // per-instance (copying an armed-but-uncancelled deadline is the common
  // after_ms() return path).
  Deadline(const Deadline& other)
      : armed_(other.armed_),
        expires_at_(other.expires_at_),
        cancelled_(other.cancelled_.load(std::memory_order_acquire)) {}
  Deadline& operator=(const Deadline& other) {
    armed_ = other.armed_;
    expires_at_ = other.expires_at_;
    cancelled_.store(other.cancelled_.load(std::memory_order_acquire),
                     std::memory_order_release);
    return *this;
  }

  /// Expires `timeout_ms` milliseconds from now; 0 means no deadline.
  static Deadline after_ms(std::uint64_t timeout_ms) {
    Deadline d;
    if (timeout_ms > 0) {
      d.armed_ = true;
      d.expires_at_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return d;
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool expired() const { return armed_ && Clock::now() >= expires_at_; }

  /// Cancels cooperatively: the next check() throws kCancelled.  const so
  /// holders of a `const Deadline*` (the read-only view computations get)
  /// can still be cancelled by their owner.
  void cancel() const { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Throws robust::Error(kCancelled/kTimeout) naming the checkpoint when
  /// cancelled or expired.
  void check(std::string_view where) const {
    if (cancelled())
      throw Error(Code::kCancelled, "cancelled at " + std::string(where));
    if (expired())
      throw Error(Code::kTimeout,
                  "deadline exceeded at " + std::string(where));
  }

 private:
  bool armed_ = false;
  Clock::time_point expires_at_{};
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace rct::robust
