#pragma once
// Cooperative deadlines.  A Deadline is a wall-clock point checked at safe
// points in long computations (before an eigensolve, every few report
// rows); check() throws robust::Error(kTimeout), so a net that blows its
// budget unwinds to the engine's per-net failure handler instead of
// stalling the whole batch.  Cooperative means exactly that: code between
// checkpoints runs to completion, no thread is ever killed.

#include <chrono>
#include <string>

#include "robust/error.hpp"

namespace rct::robust {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires.
  Deadline() = default;

  /// Expires `timeout_ms` milliseconds from now; 0 means no deadline.
  static Deadline after_ms(std::uint64_t timeout_ms) {
    Deadline d;
    if (timeout_ms > 0) {
      d.armed_ = true;
      d.expires_at_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return d;
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool expired() const { return armed_ && Clock::now() >= expires_at_; }

  /// Throws robust::Error(kTimeout) naming the checkpoint when expired.
  void check(std::string_view where) const {
    if (expired())
      throw Error(Code::kTimeout,
                  "deadline exceeded at " + std::string(where));
  }

 private:
  bool armed_ = false;
  Clock::time_point expires_at_{};
};

}  // namespace rct::robust
