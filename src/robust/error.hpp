#pragma once
// robust — structured error taxonomy for the whole pipeline.
//
// Every failure the toolkit can produce carries a machine-readable code, a
// category (parse / topology / numeric / resource / cancelled) and, when
// known, a source location (file + 1-based line).  Parsers, core::report
// and the batch engine throw robust::Error (or a thin subclass kept for
// existing catch sites) instead of ad-hoc std::runtime_error strings, so
// batch failure records, JSON output and exit codes can dispatch on the
// code instead of substring-matching messages.
//
// Lenient parsing does not throw at all: defects are collected as
// Diagnostic values (same code/category/location vocabulary) and the
// parser recovers at the next safe point.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rct::robust {

/// Coarse failure class; the batch engine and exit-code policy dispatch on
/// this.
enum class Category {
  kParse,      ///< malformed input text
  kTopology,   ///< element graph is not a rooted RC tree
  kNumeric,    ///< non-physical values, NaN/Inf, non-convergence
  kResource,   ///< deadlines, I/O, capacity
  kCancelled,  ///< work abandoned by policy (fail-fast, max-failures)
};

/// Specific failure code.  category_of() maps each code to its Category.
enum class Code {
  kNone = 0,
  // parse
  kFileOpen,
  kSyntax,
  kBadNumber,
  kBadUnit,
  kUnsupported,
  kNoDriver,
  kEmptyInput,
  // topology
  kDuplicateNode,
  kCycle,
  kDisconnected,
  kDanglingLoad,
  kEmptyTree,
  // numeric
  kNonPhysicalValue,
  kNanValue,
  kNonConvergence,
  kBoundViolation,
  // resource
  kTimeout,
  kTaskFailure,
  kOverloaded,        ///< admission control shed the request; retry later
  kRequestTooLarge,   ///< request exceeds the protocol's line-length cap
  // cancelled
  kCancelled,
};

/// Stable kebab-case name ("bad-number", "timeout"...) for JSON output.
[[nodiscard]] std::string_view code_name(Code code);

/// Category of a code (kNone maps to kParse; never emitted for successes).
[[nodiscard]] Category category_of(Code code);

/// Stable lowercase category name ("parse", "numeric"...).
[[nodiscard]] std::string_view category_name(Category category);

/// Where in the input a defect sits.  line == 0 means "whole file / not
/// line-addressable"; file may be empty for in-memory text (the formatted
/// message then falls back to the parser's stream name, e.g. "spef").
struct SourceLocation {
  std::string file;
  std::size_t line = 0;
};

/// Renders "<file-or-stream> line <N>: <message> [<category>/<code>]" —
/// the one message format every error and diagnostic uses.
[[nodiscard]] std::string format_message(Code code, const std::string& message,
                                         const SourceLocation& location,
                                         std::string_view stream_name);

/// The toolkit-wide typed exception.  Derives from std::runtime_error so
/// pre-taxonomy catch sites keep working; what() is format_message().
class Error : public std::runtime_error {
 public:
  Error(Code code, const std::string& message, SourceLocation location = {},
        std::string_view stream_name = {})
      : std::runtime_error(format_message(code, message, location, stream_name)),
        code_(code),
        message_(message),
        location_(std::move(location)),
        stream_name_(stream_name) {}

  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] Category category() const { return category_of(code_); }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const SourceLocation& location() const { return location_; }

  /// Copy of this error with the location's file filled in (used by the
  /// *_file parser wrappers, which know the path their line-level callees
  /// do not).
  [[nodiscard]] Error with_file(const std::string& file) const {
    Error e = *this;
    e.rebind_file(file);
    return e;
  }

 protected:
  void rebind_file(const std::string& file) {
    location_.file = file;
    static_cast<std::runtime_error&>(*this) =
        std::runtime_error(format_message(code_, message_, location_, stream_name_));
  }

 private:
  Code code_;
  std::string message_;
  SourceLocation location_;
  std::string stream_name_;
};

/// One recovered defect from a lenient parse (same vocabulary as Error,
/// minus the stack unwind).
struct Diagnostic {
  Code code = Code::kNone;
  std::string message;
  SourceLocation location;
  std::string net;  ///< *D_NET name the defect belongs to ("" = file scope)

  /// Same rendering as Error::what().
  [[nodiscard]] std::string to_string(std::string_view stream_name = {}) const {
    return format_message(code, message, location, stream_name);
  }
};

/// Renders diagnostics one per line ("path line N: msg [cat/code]").
[[nodiscard]] std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics,
                                             std::string_view stream_name = {});

}  // namespace rct::robust
