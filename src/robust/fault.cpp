#include "robust/fault.hpp"

#if RCT_FAULT_ENABLED

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/log.hpp"

namespace rct::robust::fault {
namespace {

const char* action_name(Action action) {
  switch (action) {
    case Action::kThrow: return "throw";
    case Action::kNan: return "nan";
    case Action::kSleep: return "sleep";
  }
  return "?";
}

struct FaultSpec {
  Action action;
  std::uint64_t arg_ms;
  int remaining;  ///< hits left; -1 = unlimited
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, FaultSpec, std::less<>> armed;
  std::map<std::string, std::uint64_t, std::less<>> fired;
  std::atomic<int> armed_count{0};
};

Registry& storage() {
  static Registry r;
  return r;
}

void arm_locked(Registry& r, std::string_view site, Action action, std::uint64_t arg_ms,
                int count) {
  auto [it, inserted] = r.armed.insert_or_assign(std::string(site),
                                                 FaultSpec{action, arg_ms, count});
  if (inserted) r.armed_count.fetch_add(1, std::memory_order_relaxed);
}

/// Strips ASCII blanks so "site = action x1" parses like "site=actionx1".
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::size_t arm_from_string_locked(Registry& r, std::string_view spec) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw Error(Code::kSyntax, "fault spec entry '" + std::string(entry) +
                                     "' is not site=action[:ms][xN]");
    const std::string_view site = trim(entry.substr(0, eq));
    std::string_view rhs = trim(entry.substr(eq + 1));
    // Optional trailing xN hit limit.
    int count = -1;
    if (const std::size_t x = rhs.find_last_of('x');
        x != std::string_view::npos && x + 1 < rhs.size() &&
        rhs.find_first_not_of("0123456789", x + 1) == std::string_view::npos) {
      count = std::atoi(std::string(rhs.substr(x + 1)).c_str());
      rhs = trim(rhs.substr(0, x));
    }
    // Optional :arg (sleep duration in ms).
    std::uint64_t arg_ms = 0;
    if (const std::size_t colon = rhs.find(':'); colon != std::string_view::npos) {
      arg_ms = std::strtoull(std::string(rhs.substr(colon + 1)).c_str(), nullptr, 10);
      rhs = trim(rhs.substr(0, colon));
    }
    Action action;
    if (rhs == "throw")
      action = Action::kThrow;
    else if (rhs == "nan")
      action = Action::kNan;
    else if (rhs == "sleep")
      action = Action::kSleep;
    else
      throw Error(Code::kSyntax,
                  "unknown fault action '" + std::string(rhs) + "' (throw|nan|sleep)");
    arm_locked(r, site, action, arg_ms, count);
    ++armed;
  }
  return armed;
}

/// Loads RCT_FAULT once, before the first registry access, so CLI runs can
/// inject faults without code changes.  A malformed plan must not pass
/// silently: the parse error propagates out of the first checkpoint hit.
void ensure_env_loaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("RCT_FAULT");
    if (env == nullptr || *env == '\0') return;
    Registry& r = storage();
    const std::lock_guard<std::mutex> lock(r.mutex);
    arm_from_string_locked(r, env);
  });
}

/// Looks up `site` armed with `action`; consumes one hit and returns the
/// spec when it fires.
bool consume(std::string_view site, Action action, std::uint64_t* arg_ms = nullptr) {
  ensure_env_loaded();
  Registry& r = storage();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return false;
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.armed.find(site);
  if (it == r.armed.end() || it->second.action != action) return false;
  if (arg_ms != nullptr) *arg_ms = it->second.arg_ms;
  ++r.fired[std::string(site)];
  // Injected faults masquerade as organic failures downstream; this line is
  // what lets a postmortem tell the two apart.
  obs::log::warn("robust.fault.fired", {{"site", site}, {"action", action_name(action)}});
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    r.armed.erase(it);
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace

void arm(std::string_view site, Action action, std::uint64_t arg_ms, int count) {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  arm_locked(r, site, action, arg_ms, count);
}

void disarm(std::string_view site) {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (const auto it = r.armed.find(site); it != r.armed.end()) {
    r.armed.erase(it);
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

std::size_t arm_from_string(std::string_view spec) {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return arm_from_string_locked(r, spec);
}

std::uint64_t fired_count(std::string_view site) {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.fired.find(site);
  return it == r.fired.end() ? 0 : it->second;
}

void reset_fired() {
  ensure_env_loaded();
  Registry& r = storage();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.fired.clear();
}

bool any_armed() {
  ensure_env_loaded();
  return storage().armed_count.load(std::memory_order_relaxed) > 0;
}

void maybe_throw(std::string_view site, Code code) {
  if (consume(site, Action::kThrow))
    throw Error(code, "injected fault at " + std::string(site));
}

void maybe_sleep(std::string_view site) {
  std::uint64_t ms = 0;
  if (consume(site, Action::kSleep, &ms) && ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

double corrupt(std::string_view site, double value) {
  if (consume(site, Action::kNan))
    return std::numeric_limits<double>::quiet_NaN();
  return value;
}

bool maybe_fire(std::string_view site) { return consume(site, Action::kThrow); }

}  // namespace rct::robust::fault

#endif  // RCT_FAULT_ENABLED
