#include "robust/error.hpp"

namespace rct::robust {

std::string_view code_name(Code code) {
  switch (code) {
    case Code::kNone: return "none";
    case Code::kFileOpen: return "file-open";
    case Code::kSyntax: return "syntax";
    case Code::kBadNumber: return "bad-number";
    case Code::kBadUnit: return "bad-unit";
    case Code::kUnsupported: return "unsupported";
    case Code::kNoDriver: return "no-driver";
    case Code::kEmptyInput: return "empty-input";
    case Code::kDuplicateNode: return "duplicate-node";
    case Code::kCycle: return "cycle";
    case Code::kDisconnected: return "disconnected";
    case Code::kDanglingLoad: return "dangling-load";
    case Code::kEmptyTree: return "empty-tree";
    case Code::kNonPhysicalValue: return "non-physical-value";
    case Code::kNanValue: return "nan-value";
    case Code::kNonConvergence: return "non-convergence";
    case Code::kBoundViolation: return "bound-violation";
    case Code::kTimeout: return "timeout";
    case Code::kTaskFailure: return "task-failure";
    case Code::kOverloaded: return "overloaded";
    case Code::kRequestTooLarge: return "request-too-large";
    case Code::kCancelled: return "cancelled";
  }
  return "unknown";
}

Category category_of(Code code) {
  switch (code) {
    case Code::kNone:
    case Code::kFileOpen:
    case Code::kSyntax:
    case Code::kBadNumber:
    case Code::kBadUnit:
    case Code::kUnsupported:
    case Code::kNoDriver:
    case Code::kEmptyInput:
      return Category::kParse;
    case Code::kDuplicateNode:
    case Code::kCycle:
    case Code::kDisconnected:
    case Code::kDanglingLoad:
    case Code::kEmptyTree:
      return Category::kTopology;
    case Code::kNonPhysicalValue:
    case Code::kNanValue:
    case Code::kNonConvergence:
    case Code::kBoundViolation:
      return Category::kNumeric;
    case Code::kTimeout:
    case Code::kTaskFailure:
    case Code::kOverloaded:
    case Code::kRequestTooLarge:
      return Category::kResource;
    case Code::kCancelled:
      return Category::kCancelled;
  }
  return Category::kParse;
}

std::string_view category_name(Category category) {
  switch (category) {
    case Category::kParse: return "parse";
    case Category::kTopology: return "topology";
    case Category::kNumeric: return "numeric";
    case Category::kResource: return "resource";
    case Category::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string format_message(Code code, const std::string& message,
                           const SourceLocation& location, std::string_view stream_name) {
  std::string out;
  if (!location.file.empty())
    out += location.file;
  else if (!stream_name.empty())
    out += stream_name;
  if (location.line != 0) {
    if (!out.empty()) out += ' ';
    out += "line " + std::to_string(location.line);
  }
  if (!out.empty()) out += ": ";
  out += message;
  if (code != Code::kNone) {
    out += " [";
    out += category_name(category_of(code));
    out += '/';
    out += code_name(code);
    out += ']';
  }
  return out;
}

std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics,
                               std::string_view stream_name) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string(stream_name);
    out += '\n';
  }
  return out;
}

}  // namespace rct::robust
