#pragma once
// robust::fault — deterministic fault injection at named sites.
//
// Production code plants cheap checkpoints:
//
//   robust::fault::maybe_throw("core.report.eigensolve", Code::kNonConvergence);
//   robust::fault::maybe_sleep("engine.net.analyze");
//   x = robust::fault::corrupt("core.report.exact_delay", x);   // NaN when armed
//
// Tests arm them programmatically (arm / disarm_all) or, for end-to-end
// CLI tests, via the RCT_FAULT environment variable:
//
//   RCT_FAULT="site=throw;site2=sleep:50;site3=nanx2"
//
// where the optional `:ARG` is the sleep duration in ms and the optional
// `xN` suffix limits the fault to the first N hits of the site.  The
// robustness tests use this to prove that isolation, timeout, retry and
// degradation paths actually fire.
//
// Like the obs timing layer, the whole mechanism compiles out with
// -DRCT_FAULT=OFF (RCT_FAULT_ENABLED=0): every checkpoint collapses to a
// constant-false branch with zero runtime cost, and arm() becomes a no-op.
// The default build keeps it on so the shipped test suite exercises the
// degraded paths; the hot-path cost while disarmed is one relaxed atomic
// load per checkpoint.

#include <cstdint>
#include <string_view>

#include "robust/error.hpp"

#ifndef RCT_FAULT_ENABLED
#define RCT_FAULT_ENABLED 1
#endif

namespace rct::robust::fault {

enum class Action {
  kThrow,  ///< throw robust::Error at the site
  kNan,    ///< corrupt() returns quiet NaN
  kSleep,  ///< sleep arg_ms milliseconds
};

#if RCT_FAULT_ENABLED

/// Arms `site`; the fault fires on its next `count` hits (-1 = every hit).
void arm(std::string_view site, Action action, std::uint64_t arg_ms = 0, int count = -1);

/// Disarms one site / every site.  fired counters survive disarm_all()
/// until reset_fired().
void disarm(std::string_view site);
void disarm_all();

/// Parses "site=action[:arg][xN][;...]" (also accepts ',' separators) and
/// arms each entry; returns the number of entries armed.  Unknown actions
/// throw robust::Error(kSyntax) — a mistyped fault plan must not silently
/// test nothing.
std::size_t arm_from_string(std::string_view spec);

/// Times a site fired (for test assertions).
[[nodiscard]] std::uint64_t fired_count(std::string_view site);
void reset_fired();

/// True when any site is armed (fast path: one relaxed atomic load).
[[nodiscard]] bool any_armed();

// --- checkpoints (no-ops while nothing is armed) -------------------------

/// Throws robust::Error(code, "injected fault at <site>") when armed.
void maybe_throw(std::string_view site, Code code = Code::kTaskFailure);

/// Sleeps the armed duration when armed.
void maybe_sleep(std::string_view site);

/// Returns NaN when armed with kNan, `value` otherwise.
[[nodiscard]] double corrupt(std::string_view site, double value);

/// True when `site` is armed with kThrow — for sites whose failure mode is
/// modeled by the caller instead of an exception (torn socket writes,
/// forced disconnects, clamped reads).  Consumes one hit like the other
/// checkpoints.
[[nodiscard]] bool maybe_fire(std::string_view site);

#else  // RCT_FAULT_ENABLED == 0: every checkpoint is a constant no-op.

inline void arm(std::string_view, Action, std::uint64_t = 0, int = -1) {}
inline void disarm(std::string_view) {}
inline void disarm_all() {}
inline std::size_t arm_from_string(std::string_view) { return 0; }
[[nodiscard]] inline std::uint64_t fired_count(std::string_view) { return 0; }
inline void reset_fired() {}
[[nodiscard]] inline bool any_armed() { return false; }
inline void maybe_throw(std::string_view, Code = Code::kTaskFailure) {}
inline void maybe_sleep(std::string_view) {}
[[nodiscard]] inline double corrupt(std::string_view, double value) { return value; }
[[nodiscard]] inline bool maybe_fire(std::string_view) { return false; }

#endif

}  // namespace rct::robust::fault
