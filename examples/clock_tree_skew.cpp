// Clock-tree skew analysis with Elmore bounds.
//
// An H-tree distributes a clock to 2^levels sinks.  A perfectly balanced
// tree has zero skew; real trees have load mismatch.  This example perturbs
// one sink's load, then uses the paper's bounds to answer the question a
// clock designer actually asks: "what is the guaranteed worst-case skew?"
//
//   skew(i, j) = delay(i) - delay(j)
//   guaranteed skew upper bound = max_i T_D(i) - min_j max(T_D(j)-sigma_j, 0)
//
// The exact simulator confirms the bound and reports the true skew.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "rctree/generators.hpp"
#include "rctree/units.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

struct SkewReport {
  double true_skew;
  double bound_skew;
};

SkewReport analyze(const RCTree& tree, const char* label) {
  const auto leaves = tree.leaves();
  const auto bounds = core::delay_bounds(tree);
  const sim::ExactAnalysis exact(tree);

  double max_exact = 0.0;
  double min_exact = 1e300;
  double max_upper = 0.0;
  double min_lower = 1e300;
  for (NodeId leaf : leaves) {
    const double d = exact.step_delay(leaf);
    max_exact = std::max(max_exact, d);
    min_exact = std::min(min_exact, d);
    max_upper = std::max(max_upper, bounds[leaf].upper);
    min_lower = std::min(min_lower, bounds[leaf].lower);
  }
  const SkewReport r{max_exact - min_exact, max_upper - min_lower};
  std::printf("%-22s sinks %3zu  latest sink %-8s  true skew %-9s  bound %-9s\n", label,
              leaves.size(), format_time(max_exact).c_str(), format_time(r.true_skew).c_str(),
              format_time(r.bound_skew).c_str());
  return r;
}

}  // namespace

int main() {
  std::printf("clock H-tree skew analysis (Elmore bounds vs exact)\n\n");

  // 16-sink H-tree: level-0 trunk 200 ohm / 150 fF, halving per level,
  // 12 fF sink loads.
  const RCTree balanced = gen::htree(4, 200.0, 150e-15, 12e-15);
  const SkewReport base = analyze(balanced, "balanced");

  // Mismatch: one sink sees 3x load (e.g. a register bank).  Rebuild with
  // the perturbed cap.
  RCTreeBuilder b;
  const auto victim = balanced.leaves().front();
  for (NodeId i = 0; i < balanced.size(); ++i) {
    const double extra = (i == victim) ? 24e-15 : 0.0;
    b.add_node(balanced.name(i), balanced.parent(i), balanced.resistance(i),
               balanced.capacitance(i) + extra);
  }
  const RCTree skewed = std::move(b).build();
  const SkewReport bad = analyze(skewed, "one sink +24fF");

  std::printf("\nload mismatch multiplied the true skew by %.1fx; the bound tracked it\n",
              bad.true_skew / std::max(base.true_skew, 1e-15));
  std::printf("(bound/true at the mismatched tree: %.2fx — conservatism you can budget).\n",
              bad.bound_skew / bad.true_skew);

  const bool ok = bad.true_skew <= bad.bound_skew && base.true_skew <= base.bound_skew;
  std::printf("skew bound holds: %s\n", ok ? "yes" : "NO (bug)");
  return ok ? 0 : 1;
}
