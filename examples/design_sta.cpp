// Design-level STA: a small sequential block timed entirely with the
// paper's guaranteed bounds — no simulation in the signoff loop.
//
//   in --net-- u1(inv) --net-- ff_a(dff) --net-- u2(buf) --+--net-- ff_b
//                                                u3(nand) -+
//   (u3 is fed by a long slow net from a second input)
//
// Every endpoint slack printed here is SAFE: arrival uses the Elmore upper
// bound per stage, which the paper proves can never under-report.

#include <cstdio>

#include "rctree/generators.hpp"
#include "sta/design.hpp"

using namespace rct;
using namespace rct::sta;

int main() {
  Design d(builtin_library());
  d.add_primary_input("in", 120.0);
  d.add_primary_input("sel", 120.0);

  d.add_instance("u1", "inv_x1");
  d.add_instance("ff_a", "dff_x1");
  d.add_instance("u2", "buf_x2");
  d.add_instance("u3", "nand2_x1");
  d.add_instance("ff_b", "dff_x1");

  // Launch-side logic.
  d.add_net("in", gen::line(3, 20.0, 2e-15, 90.0, 14e-15), {{"n4", "u1"}});
  d.add_net("u1", gen::line(4, 20.0, 2e-15, 110.0, 18e-15), {{"n5", "ff_a"}});
  // Capture-side cone: ff_a relaunches; u3 arrives late via a long route.
  d.add_net("ff_a", gen::line(5, 20.0, 2e-15, 100.0, 16e-15), {{"n6", "u2"}});
  d.add_net("sel", gen::line(12, 20.0, 2e-15, 260.0, 35e-15), {{"n13", "u3"}});
  d.add_net("u2", gen::line(3, 20.0, 2e-15, 95.0, 15e-15), {{"n4", "u3"}});
  d.add_net("u3", gen::line(4, 20.0, 2e-15, 105.0, 17e-15), {{"n5", "ff_b"}});

  const double clock = 2.5e-9;
  const auto report = d.analyze(clock);

  std::printf("arrival windows (guaranteed, ps):\n");
  std::printf("%-8s %12s %12s\n", "pin", "earliest", "latest");
  for (const auto& a : report.arrivals)
    std::printf("%-8s %12.1f %12.1f\n", a.instance.c_str(), a.lower * 1e12, a.upper * 1e12);

  std::printf("\nendpoint setup slacks @ %.2fns clock:\n", clock * 1e9);
  for (const auto& ep : report.endpoints)
    std::printf("  %-8s arrival %8.1fps  slack %8.1fps  %s\n", ep.instance.c_str(),
                ep.arrival_upper * 1e12, ep.setup_slack * 1e12,
                ep.setup_slack >= 0 ? "MET (guaranteed)" : "VIOLATED (maybe)");

  std::printf("\nworst slack: %.1fps — a positive value here is a proof, not an estimate:\n",
              report.worst_slack * 1e12);
  std::printf("the Elmore arrival can only over-state the true arrival (paper, Theorem).\n");
  return report.worst_slack >= 0.0 ? 0 : 1;
}
