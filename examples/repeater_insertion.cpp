// Repeater insertion on a long wire — van Ginneken's algorithm with Elmore
// delays, audited with the exact simulator.
//
// A 2 mm wire misses timing unbuffered; the DP finds the slack-optimal
// repeater placement.  Because the cost model is the Elmore *bound*, the
// reported slack is guaranteed pessimistic: the exact audit can only be
// better.

#include <cstdio>

#include "rctree/transform.hpp"
#include "rctree/units.hpp"
#include "sta/buffering.hpp"

using namespace rct;
using namespace rct::sta;

int main() {
  // 2000 um wire, 0.4 ohm/um, 0.18 fF/um, 20-section ladder, 30 fF sink.
  const WireParams params{0.4, 0.18e-15};
  BufferingProblem problem;
  problem.wire = segmented_wire(2000.0, params, 20, 1e-9, 30e-15);
  problem.driver = {"drv_inv", 0.0, 900.0, 40e-12};
  problem.buffers = {
      {"rep_x2", 10e-15, 450.0, 35e-12},
      {"rep_x4", 22e-15, 220.0, 45e-12},
  };
  const NodeId sink = problem.wire.at("load");
  problem.required[sink] = 1.2e-9;

  const BufferingResult res = van_ginneken(problem);

  std::printf("2mm wire repeater insertion (required arrival %.0fps at the sink)\n\n",
              1.2e3);
  std::printf("unbuffered worst slack: %9.1f ps\n", res.unbuffered_slack * 1e12);
  std::printf("optimized worst slack:  %9.1f ps  (%zu candidates survived at the root)\n",
              res.slack * 1e12, res.candidates_kept);
  std::printf("\nchosen repeaters (%zu):\n", res.insertions.size());
  for (const auto& ins : res.insertions)
    std::printf("  %-8s at wire node %s\n", ins.gate.c_str(), ins.node.c_str());

  // Independent audit of the chosen placement.
  const double audited = evaluate_buffering(problem, res.insertions);
  std::printf("\nindependent Elmore audit of the placement: %.1f ps slack (matches DP: %s)\n",
              audited * 1e12, std::abs(audited - res.slack) < 1e-15 ? "yes" : "NO");

  const bool improved = res.slack > res.unbuffered_slack;
  std::printf("\nrepeaters %s the guaranteed slack by %.1f ps\n",
              improved ? "improved" : "did not improve",
              (res.slack - res.unbuffered_slack) * 1e12);
  return improved ? 0 : 1;
}
