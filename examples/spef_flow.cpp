// SPEF flow: the "drop-in timer backend" use case.  Read extracted
// parasitics (SPEF-lite), report guaranteed delay bounds and effective
// capacitance per net, and write the parasitics back out.
//
//   $ ./spef_flow              # uses a built-in two-net SPEF
//   $ ./spef_flow chip.spef

#include <cstdio>
#include <string>

#include "core/bounds.hpp"
#include "core/effective_capacitance.hpp"
#include "rctree/spef.hpp"
#include "rctree/units.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

constexpr const char* kDemoSpef = R"(*SPEF "IEEE 1481-1998"
*DESIGN "spef_flow_demo"
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 OHM

*D_NET clk_branch 0.355
*CONN
*P clkdrv I
*I reg1:CK O
*I reg2:CK O
*CAP
1 t1 0.075
2 t2 0.060
3 reg1:CK 0.110
4 reg2:CK 0.110
*RES
1 clkdrv t1 140
2 t1 t2 95
3 t1 reg1:CK 180
4 t2 reg2:CK 120
*END

*D_NET data_short 0.09
*CONN
*P u7:Z I
*I u9:A O
*CAP
1 m1 0.040
2 u9:A 0.050
*RES
1 u7:Z m1 75
2 m1 u9:A 60
*END
)";

}  // namespace

int main(int argc, char** argv) {
  SpefFile file;
  try {
    file = (argc > 1) ? parse_spef_file(argv[1]) : parse_spef(kDemoSpef);
  } catch (const SpefError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("design '%s': %zu nets\n\n", file.design.c_str(), file.nets.size());
  for (const SpefNet& net : file.nets) {
    const RCTree& t = net.tree;
    const sim::ExactAnalysis exact(t);
    const auto bounds = core::delay_bounds(t);
    // Effective capacitance the driver of this net actually sees, for a
    // plausible driver strength.
    const double rd = 600.0;
    const auto ceff = core::effective_capacitance(t, rd);

    std::printf("net %-12s  %zu nodes, Ctot %s, Ceff(%.0f ohm drv) %s (%.0f%% shielded)\n",
                net.name.c_str(), t.size(),
                format_engineering(ceff.total, "F").c_str(), rd,
                format_engineering(ceff.ceff, "F").c_str(), 100.0 * ceff.shielding);
    for (NodeId load : net.loads) {
      const double exact_d = exact.step_delay(load);
      std::printf("  sink %-10s exact %-9s in guaranteed [%s, %s]\n",
                  t.name(load).c_str(), format_time(exact_d).c_str(),
                  format_time(bounds[load].lower).c_str(),
                  format_time(bounds[load].upper).c_str());
      if (exact_d > bounds[load].upper || exact_d < bounds[load].lower) {
        std::fprintf(stderr, "BOUND VIOLATION (bug) at %s\n", t.name(load).c_str());
        return 1;
      }
    }
  }

  std::printf("\nround-trip: re-emitting SPEF-lite (%zu bytes)\n",
              write_spef(file).size());
  return 0;
}
