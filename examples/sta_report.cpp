// STA-lite: time a 3-stage gate/interconnect path with the paper's bounds.
//
// Each stage is a driving gate plus an RC wire tree; the timer forms the
// loaded net (driver resistance + receiver pin caps), applies the Elmore
// upper bound / mu-sigma lower bound per stage, propagates slew as the
// quadrature sum of sigmas (central moments add under convolution), and —
// in audit mode — solves each stage net exactly to show where the bound
// margin sits.

#include <cstdio>

#include "rctree/generators.hpp"
#include "sta/path_timer.hpp"

using namespace rct;
using namespace rct::sta;

int main() {
  const auto lib = builtin_library();

  // Stage 1: inv_x1 drives a short local net to a buffer.
  Stage s1;
  s1.driver = find_gate(lib, "inv_x1");
  s1.wire = gen::line(3, 25.0, 3e-15, 90.0, 12e-15);
  s1.sink = "n4";
  s1.sink_load = find_gate(lib, "buf_x2").input_capacitance;

  // Stage 2: buf_x2 drives a long route with a side branch (modeled by an
  // extra pin load mid-net).
  Stage s2;
  s2.driver = find_gate(lib, "buf_x2");
  s2.wire = gen::line(8, 25.0, 3e-15, 140.0, 22e-15);
  s2.sink = "n9";
  s2.extra_loads.push_back({s2.wire.at("n5"), find_gate(lib, "nand2_x1").input_capacitance});
  s2.sink_load = find_gate(lib, "inv_x4").input_capacitance;

  // Stage 3: inv_x4 drives the capture flop.
  Stage s3;
  s3.driver = find_gate(lib, "inv_x4");
  s3.wire = gen::line(5, 25.0, 3e-15, 110.0, 18e-15);
  s3.sink = "n6";
  s3.sink_load = find_gate(lib, "dff_x1").input_capacitance;

  std::printf("3-stage path: inv_x1 -> buf_x2 -> inv_x4 -> dff_x1\n\n");
  const PathTiming timing = time_path({s1, s2, s3}, /*input_sigma=*/30e-12,
                                      /*with_exact=*/true);
  std::printf("%s\n", format_path_timing(timing).c_str());

  const double margin =
      (timing.path_upper - *timing.path_exact) / *timing.path_exact * 100.0;
  std::printf("bound margin over exact: %.1f%% — the guaranteed-safe slack a signoff\n",
              margin);
  std::printf("flow can bank without running a simulator on every net.\n");
  return 0;
}
