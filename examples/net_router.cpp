// Route-and-estimate: the placement inner loop the paper's intro describes.
//
// A clock buffer must be placed to drive four flops at fixed locations.  For
// each candidate placement we route the net (rectilinear spanning tree with
// Steiner corner sharing), expand it to RC, and score it with the Elmore
// bound — the O(N) metric cheap enough to call inside a placer.  The best
// placement is then audited with the exact simulator.

#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "rctree/routing.hpp"
#include "rctree/units.hpp"
#include "sim/exact.hpp"

using namespace rct;
using namespace rct::route;

int main() {
  const std::vector<Pin> flops{
      {"ff_nw", -180.0, 140.0, 12e-15},
      {"ff_ne", 220.0, 160.0, 12e-15},
      {"ff_sw", -160.0, -180.0, 12e-15},
      {"ff_se", 200.0, -120.0, 12e-15},
  };

  std::printf("placing a clock buffer for 4 flops; scoring candidates by the\n");
  std::printf("worst-sink Elmore bound (the guaranteed metric)\n\n");
  std::printf("%-12s %12s %14s %14s\n", "candidate", "wirelen(um)", "worst TD", "worst lower");

  struct Candidate {
    const char* name;
    double x;
    double y;
  };
  const std::vector<Candidate> candidates{
      {"corner", -180.0, 140.0}, {"origin", 0.0, 0.0}, {"centroid", 20.0, 0.0},
      {"east", 180.0, 20.0},
  };

  double best_score = 1e300;
  RoutedNet best_net;
  const Candidate* best_cand = nullptr;
  for (const Candidate& cand : candidates) {
    const Pin driver{"buf", cand.x, cand.y};
    const RoutedNet net = route_net(driver, flops);
    const auto bounds = core::delay_bounds(net.tree);
    double worst_td = 0.0;
    double worst_lo = 0.0;
    for (NodeId s : net.sink_nodes) {
      worst_td = std::max(worst_td, bounds[s].upper);
      worst_lo = std::max(worst_lo, bounds[s].lower);
    }
    std::printf("%-12s %12.0f %14s %14s\n", cand.name, net.total_wirelength,
                format_time(worst_td).c_str(), format_time(worst_lo).c_str());
    if (worst_td < best_score) {
      best_score = worst_td;
      best_net = net;
      best_cand = &cand;
    }
  }

  std::printf("\nwinner: '%s' — auditing with the exact simulator:\n", best_cand->name);
  const sim::ExactAnalysis exact(best_net.tree);
  bool sound = true;
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const NodeId s = best_net.sink_nodes[i];
    const double actual = exact.step_delay(s);
    const double bound = core::delay_bounds_at(best_net.tree, s).upper;
    std::printf("  %-6s exact %-9s <= bound %-9s (%s)\n", flops[i].name.c_str(),
                format_time(actual).c_str(), format_time(bound).c_str(),
                actual <= bound ? "ok" : "VIOLATION");
    sound = sound && actual <= bound;
  }
  std::printf("\nrouting decisions made on the bound are safe: the true delay can only\n");
  std::printf("be better than promised (paper, Theorem).\n");
  return sound ? 0 : 1;
}
