// The full industry flow: Liberty cell library in, SPEF parasitics in,
// timing out — three ways for the same stage:
//
//   1. table lookup at C_eff (what production timers report),
//   2. the paper's guaranteed Elmore bound (what you can sign off on),
//   3. the exact simulator (what silicon would do, for audit).
//
//   $ ./liberty_timer [testdata/demo.lib [testdata/two_nets.spef]]

#include <cstdio>
#include <string>

#include "core/bounds.hpp"
#include "rctree/spef.hpp"
#include "rctree/units.hpp"
#include "sim/exact.hpp"
#include "sta/liberty.hpp"
#include "sta/nldm.hpp"
#include "sta/path_timer.hpp"

using namespace rct;
using namespace rct::sta;

int main(int argc, char** argv) {
  const std::string lib_path = argc > 1 ? argv[1] : "testdata/demo.lib";
  const std::string spef_path = argc > 2 ? argv[2] : "testdata/two_nets.spef";

  LibertyLibrary lib;
  SpefFile spef;
  try {
    lib = parse_liberty_file(lib_path);
    spef = parse_spef_file(spef_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(run from the repository root or pass paths)\n", e.what());
    return 1;
  }
  std::printf("library '%s' (%zu cells) + design '%s' (%zu nets)\n\n", lib.name.c_str(),
              lib.cells.size(), spef.design.c_str(), spef.nets.size());

  // Drive every SPEF net with the library inverter; use its own NLDM tables.
  const LibertyCell& cell = lib.cell("inv_demo");
  const Gate gate = linearize(cell);
  const LibertyArc& arc = cell.arcs.front();
  const CharacterizedGate cg{gate, *arc.cell_rise, *arc.rise_transition};
  const double input_slew = 0.05e-9;

  std::printf("%-12s %-10s %12s %12s %12s %12s\n", "net", "sink", "table(ps)", "bound(ps)",
              "exact(ps)", "Ceff(fF)");
  for (const SpefNet& net : spef.nets) {
    for (NodeId load : net.loads) {
      const auto table = table_stage_delay(cg, net.tree, load, input_slew);
      // Bound route: gate intrinsic + Elmore of the driver-loaded net.
      const RCTree loaded = load_net(net.tree, gate.drive_resistance, {});
      const double bound =
          gate.intrinsic_delay + core::delay_bounds(loaded)[loaded.at(net.tree.name(load))].upper;
      // Exact route on the same loaded net.
      const sim::ExactAnalysis ex_loaded(loaded);
      const double truth =
          gate.intrinsic_delay + ex_loaded.step_delay(loaded.at(net.tree.name(load)));
      std::printf("%-12s %-10s %12.2f %12.2f %12.2f %12.2f\n", net.name.c_str(),
                  net.tree.name(load).c_str(), table.delay * 1e12, bound * 1e12, truth * 1e12,
                  table.ceff * 1e15);
    }
  }
  std::printf("\nreading: table ~ exact (accurate, no guarantee); bound >= exact always\n");
  std::printf("(the paper's theorem) — the margin is the price of the guarantee.\n");
  return 0;
}
