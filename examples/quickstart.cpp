// Quickstart: parse an RC-tree netlist, compute the Elmore delay and the
// paper's bounds at every node, and cross-check against the exact simulator.
//
//   $ ./quickstart            # uses a built-in demo deck
//   $ ./quickstart net.sp     # or your own deck (see README for the format)

#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/units.hpp"

namespace {

constexpr const char* kDemoDeck = R"(* demo: a small gate + interconnect model
.title quickstart net
.input drv
Rdrv drv  n1 180
C1   n1   0  40f
Rw1  n1   n2 95
C2   n2   0  85f
Rw2  n2   n3 95
C3   n3   0  85f
Rbr  n1   n4 140
C4   n4   0  60f
Rw3  n3   sink1 60
Cs1  sink1 0 22f
Rw4  n4   sink2 60
Cs2  sink2 0 18f
.probe sink1
.probe sink2
.end
)";

}  // namespace

int main(int argc, char** argv) {
  rct::ParsedNetlist parsed;
  try {
    parsed = (argc > 1) ? rct::parse_netlist_file(argv[1]) : rct::parse_netlist(kDemoDeck);
  } catch (const rct::NetlistError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  for (const std::string& w : parsed.warnings) std::printf("warning: %s\n", w.c_str());
  std::printf("netlist '%s': %zu nodes, total C = %s\n\n", parsed.title.c_str(),
              parsed.tree.size(),
              rct::format_engineering(parsed.tree.total_capacitance(), "F").c_str());

  // One call computes every Table-I-style metric, including the exact 50%
  // delay from the eigendecomposition-based simulator.
  const auto rows = rct::core::build_report(parsed.tree);
  std::printf("%s\n", rct::core::format_report(rows).c_str());

  std::printf("reading the table: the paper proves  exact <= elmore  (Theorem) and\n");
  std::printf("exact >= lower = max(elmore - sigma, 0) (Corollary 1); PRH brackets it.\n");
  if (!parsed.probes.empty()) {
    std::printf("\nprobed sinks:\n");
    for (rct::NodeId p : parsed.probes) {
      std::printf("  %-8s elmore %s, exact %s\n", parsed.tree.name(p).c_str(),
                  rct::format_time(rows[p].elmore).c_str(),
                  rct::format_time(*rows[p].exact_delay).c_str());
    }
  }
  return 0;
}
