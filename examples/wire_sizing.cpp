// Wire sizing with the Elmore metric — the use case the paper's intro
// motivates: "It is used during performance driven placement and routing
// because it is the only delay metric which is easily measured in terms of
// net widths and lengths."
//
// A 10-segment line connects a driver to a sink.  Each segment's width w
// scales its resistance as r0/w and capacitance as c0*w (+ fixed fringe).
// We minimize the sink's Elmore delay over the widths with Nelder-Mead
// (total wire area capped via a penalty), then validate the "optimized beats
// uniform" conclusion with the exact simulator — the point of the paper's
// bound is precisely that Elmore-driven optimization is trustworthy.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/elmore.hpp"
#include "linalg/nelder_mead.hpp"
#include "rctree/rctree.hpp"
#include "rctree/units.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

constexpr int kSegments = 10;
constexpr double kDriverRes = 400.0;
constexpr double kSinkCap = 30e-15;
constexpr double kR0 = 150.0;     // ohm per segment at w = 1
constexpr double kC0 = 40e-15;    // area cap per segment at w = 1
constexpr double kFringe = 15e-15;  // width-independent cap per segment
constexpr double kAreaBudget = kSegments * 1.0;  // sum of widths allowed

RCTree build(const std::vector<double>& widths) {
  RCTreeBuilder b;
  NodeId prev = b.add_node("drv", kSource, kDriverRes, 0.0);
  for (int i = 0; i < kSegments; ++i) {
    const double w = widths[i];
    const double cap = kC0 * w + kFringe + (i == kSegments - 1 ? kSinkCap : 0.0);
    prev = b.add_node("n" + std::to_string(i + 1), prev, kR0 / w, cap);
  }
  return std::move(b).build();
}

double sink_elmore(const std::vector<double>& widths) {
  const RCTree t = build(widths);
  return core::elmore_delays(t).back();
}

}  // namespace

int main() {
  std::printf("Elmore-driven wire sizing (10-segment line, area-capped)\n\n");

  const std::vector<double> uniform(kSegments, 1.0);
  const double td_uniform = sink_elmore(uniform);

  // Optimize log-widths; penalize exceeding the area budget.
  auto loss = [](const std::vector<double>& logw) {
    std::vector<double> w(kSegments);
    double area = 0.0;
    for (int i = 0; i < kSegments; ++i) {
      w[i] = std::exp(logw[i]);
      if (w[i] < 0.2 || w[i] > 8.0) return 1.0;  // manufacturable range
      area += w[i];
    }
    const double over = std::max(0.0, area - kAreaBudget);
    return sink_elmore(w) * 1e9 + 10.0 * over * over;
  };
  linalg::NelderMeadOptions opt;
  opt.max_iter = 20000;
  auto res = linalg::nelder_mead(loss, std::vector<double>(kSegments, 0.0), opt);
  res = linalg::nelder_mead(loss, res.x, opt);

  std::vector<double> best(kSegments);
  double area = 0.0;
  for (int i = 0; i < kSegments; ++i) {
    best[i] = std::exp(res.x[i]);
    area += best[i];
  }
  const double td_best = sink_elmore(best);

  std::printf("segment widths (driver -> sink):\n  uniform:   ");
  for (double w : uniform) std::printf("%5.2f", w);
  std::printf("\n  optimized: ");
  for (double w : best) std::printf("%5.2f", w);
  std::printf("\n  (area %.2f / budget %.2f — classic taper: wide near driver)\n\n", area,
              kAreaBudget);

  // Validate with the exact simulator: the Elmore win must be a real win.
  const sim::ExactAnalysis sim_u(build(uniform));
  const sim::ExactAnalysis sim_o(build(best));
  const double exact_u = sim_u.step_delay(build(uniform).size() - 1);
  const double exact_o = sim_o.step_delay(build(best).size() - 1);

  std::printf("%-12s %14s %14s\n", "", "elmore", "exact 50%");
  std::printf("%-12s %14s %14s\n", "uniform", format_time(td_uniform).c_str(),
              format_time(exact_u).c_str());
  std::printf("%-12s %14s %14s\n", "optimized", format_time(td_best).c_str(),
              format_time(exact_o).c_str());
  std::printf("\nelmore improvement %.1f%%, confirmed exact improvement %.1f%%\n",
              100.0 * (1.0 - td_best / td_uniform), 100.0 * (1.0 - exact_o / exact_u));

  const bool ok = td_best < td_uniform && exact_o < exact_u;
  std::printf("optimizing the bound improved the true delay: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
